//===- bench/bench_table1.cpp - Reproduces Table 1 ------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 of the paper: for each of the 28 benchmark
/// applications, the abstract history size (T/E), front-end and back-end
/// times, and the detected violations split into harmful (E), harmless (H)
/// and false alarms (F), unfiltered and with the §9.1 filters (atomic sets
/// and display code) enabled. Each row shows the paper's numbers alongside
/// for shape comparison (absolute counts differ: the models approximate the
/// original apps; see EXPERIMENTS.md).
///
/// Also prints the §9.2 summary: SSG-flagged unfoldings refuted by the SMT
/// stage per domain, and average violations per project before/after
/// filtering.
///
/// `--governance <file>` additionally traces every solver query of the
/// suite and writes a JSON aggregate: per-stage query counts, retry rates,
/// rlimit spend and the suite's wall time — the regression baseline for the
/// solver resource-governance layer.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "apps/Apps.h"
#include "frontend/Frontend.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace c4;
using namespace c4bench;

namespace {

struct Counts {
  unsigned E = 0, H = 0, F = 0;
  unsigned total() const { return E + H + F; }
};

Counts classifyAll(const BenchApp &App, const AnalysisResult &R) {
  Counts C;
  for (const Violation &V : R.Violations) {
    switch (classify(App, V.TxnNames)) {
    case ViolationClass::Harmful:
      ++C.E;
      break;
    case ViolationClass::Harmless:
      ++C.H;
      break;
    case ViolationClass::FalseAlarm:
      ++C.F;
      break;
    }
  }
  return C;
}

} // namespace

static const int StdoutLineBuffered = []() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  return 0;
}();

int main(int Argc, char **Argv) {
  bool Quick = false;
  const char *GovernancePath = nullptr;
  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(Argv[I], "--governance") && I + 1 != Argc)
      GovernancePath = Argv[++I];
  }
  QueryTrace Trace;
  auto SuiteStart = std::chrono::steady_clock::now();

  std::printf("Table 1: analysis results on the 28 benchmark "
              "applications\n");
  std::printf("(paper numbers in [brackets]; E/H/F = harmful / harmless / "
              "false alarm)\n\n");
  std::printf("%-18s %7s %13s | %-22s | %-22s\n", "Program", "T/E",
              "FE/BE [s]", "Unfiltered E/H/F/Sum", "Filtered E/H/F/Sum");

  Counts TotalUnf, TotalFil;
  unsigned TotalSSGFlagged = 0, TotalRefuted = 0, TotalUnknown = 0;
  unsigned TotalRetries = 0, TotalDfsExhausted = 0;
  uint64_t TotalRlimitSpent = 0;
  double TotalBackend = 0;
  unsigned Projects = 0, Failures = 0, NotGeneralized = 0;
  const char *LastDomain = "";

  for (const BenchApp &App : benchApps()) {
    if (Quick && Projects >= 6)
      break;
    if (std::strcmp(LastDomain, App.Domain)) {
      std::printf("--- %s ---\n", App.Domain);
      LastDomain = App.Domain;
    }
    CompileResult Compiled = compileC4L(App.Source);
    if (!Compiled.ok()) {
      std::printf("%-18s COMPILE ERROR: %s\n", App.Name,
                  Compiled.Error.c_str());
      ++Failures;
      continue;
    }
    ++Projects;
    CompiledProgram &P = *Compiled.Program;

    AnalyzerOptions Unfiltered;
    if (GovernancePath)
      Unfiltered.Trace = &Trace;
    AnalysisResult RU = analyze(*P.History, Unfiltered);

    AnalyzerOptions Filtered;
    Filtered.DisplayFilter = true;
    Filtered.UseAtomicSets = !P.AtomicSets.empty();
    Filtered.AtomicSets = P.AtomicSets;
    if (GovernancePath)
      Filtered.Trace = &Trace;
    AnalysisResult RF = analyze(*P.History, Filtered);

    Counts CU = classifyAll(App, RU);
    Counts CF = classifyAll(App, RF);
    TotalUnf.E += CU.E;
    TotalUnf.H += CU.H;
    TotalUnf.F += CU.F;
    TotalFil.E += CF.E;
    TotalFil.H += CF.H;
    TotalFil.F += CF.F;
    TotalSSGFlagged += RF.SSGFlagged + RU.SSGFlagged;
    TotalRefuted += RF.SMTRefuted + RU.SMTRefuted;
    TotalUnknown += RF.SMTUnknown + RU.SMTUnknown;
    TotalRetries += RF.SMTRetries + RU.SMTRetries;
    TotalDfsExhausted += RF.DfsBudgetExhausted + RU.DfsBudgetExhausted;
    TotalRlimitSpent += RF.RlimitSpent + RU.RlimitSpent;
    TotalBackend += RF.BackendSeconds + RU.BackendSeconds;
    if (!RU.Generalized || !RF.Generalized)
      ++NotGeneralized;

    std::printf("%-18s %3u/%-3u %6.2f/%-6.2f | %u/%u/%u/%u [%u/%u/%u/%u]%*s "
                "| %u/%u/%u/%u [%u/%u/%u/%u]%s\n",
                App.Name, P.History->numTxns(), P.History->numStoreEvents(),
                P.FrontendSeconds, RU.BackendSeconds + RF.BackendSeconds,
                CU.E, CU.H, CU.F, CU.total(), App.PaperUnfiltered.E,
                App.PaperUnfiltered.H, App.PaperUnfiltered.F,
                App.PaperUnfiltered.E + App.PaperUnfiltered.H +
                    App.PaperUnfiltered.F,
                1, "", CF.E, CF.H, CF.F, CF.total(), App.PaperFiltered.E,
                App.PaperFiltered.H, App.PaperFiltered.F,
                App.PaperFiltered.E + App.PaperFiltered.H +
                    App.PaperFiltered.F,
                RF.Generalized ? "" : " (bounded)");
  }

  std::printf("\nSummary (paper / measured)\n");
  std::printf("  projects analyzed: %u (failures: %u, bounded-only: %u)\n",
              Projects, Failures, NotGeneralized);
  std::printf("  avg violations per project unfiltered: [7.3] %.1f\n",
              Projects ? static_cast<double>(TotalUnf.total()) / Projects
                       : 0.0);
  std::printf("  avg violations per project filtered:   [1.3] %.1f\n",
              Projects ? static_cast<double>(TotalFil.total()) / Projects
                       : 0.0);
  std::printf("  unfiltered totals E/H/F: %u/%u/%u\n", TotalUnf.E,
              TotalUnf.H, TotalUnf.F);
  std::printf("  filtered totals   E/H/F: %u/%u/%u\n", TotalFil.E,
              TotalFil.H, TotalFil.F);
  unsigned FilTotal = TotalFil.total();
  if (FilTotal) {
    std::printf("  filtered harmful rate:     [43%%] %u%%\n",
                100 * TotalFil.E / FilTotal);
    std::printf("  filtered false-alarm rate: [10%%] %u%%\n",
                100 * TotalFil.F / FilTotal);
  }
  std::printf("  SSG-flagged unfoldings refuted by SMT: %u of %u "
              "(unknown: %u)\n",
              TotalRefuted, TotalSSGFlagged, TotalUnknown);

  if (GovernancePath) {
    // Aggregate the query trace per stage and dump the governance
    // regression baseline.
    double WallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      SuiteStart)
            .count();
    struct StageAgg {
      const char *Name;
      uint64_t Queries = 0, Retried = 0, Retries = 0, Unknown = 0;
      uint64_t RlimitSpent = 0;
      double WallMs = 0;
    } Stages[2] = {{"bounded"}, {"generalize"}};
    for (const QueryRecord &R : Trace.records()) {
      StageAgg &S = Stages[std::strcmp(R.Stage, "bounded") ? 1 : 0];
      ++S.Queries;
      if (R.Attempts > 1) {
        ++S.Retried;
        S.Retries += R.Attempts - 1;
      }
      if (!std::strcmp(R.Outcome, "unknown") ||
          !std::strcmp(R.Outcome, "error"))
        ++S.Unknown;
      S.RlimitSpent += R.RlimitSpent;
      S.WallMs += R.WallMs;
    }
    FILE *F = std::fopen(GovernancePath, "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", GovernancePath);
      return 1;
    }
    std::fprintf(F, "{\n  \"projects\": %u,\n  \"wall_seconds\": %.1f,\n"
                    "  \"backend_seconds\": %.1f,\n",
                 Projects, WallSeconds, TotalBackend);
    std::fprintf(F, "  \"smt_retries\": %u,\n  \"smt_unknown\": %u,\n"
                    "  \"dfs_budget_exhausted\": %u,\n"
                    "  \"rlimit_spent\": %llu,\n  \"stages\": {\n",
                 TotalRetries, TotalUnknown, TotalDfsExhausted,
                 static_cast<unsigned long long>(TotalRlimitSpent));
    for (unsigned I = 0; I != 2; ++I) {
      const StageAgg &S = Stages[I];
      double RetryRate =
          S.Queries ? static_cast<double>(S.Retried) / S.Queries : 0.0;
      std::fprintf(
          F,
          "    \"%s\": {\"queries\": %llu, \"retried\": %llu, "
          "\"retries\": %llu, \"retry_rate\": %.4f, \"unknown\": %llu, "
          "\"rlimit_spent\": %llu, \"wall_ms\": %.1f}%s\n",
          S.Name, static_cast<unsigned long long>(S.Queries),
          static_cast<unsigned long long>(S.Retried),
          static_cast<unsigned long long>(S.Retries), RetryRate,
          static_cast<unsigned long long>(S.Unknown),
          static_cast<unsigned long long>(S.RlimitSpent), S.WallMs,
          I == 0 ? "," : "");
    }
    std::fprintf(F, "  }\n}\n");
    std::fclose(F);
    std::printf("  governance aggregate written to %s\n", GovernancePath);
  }
  return Failures ? 1 : 0;
}
