//===- bench/bench_dynamic_compare.cpp - Static vs dynamic (§9.5) ---------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the §9.5 comparison: the static analysis covers all timings,
/// while a state-of-the-art dynamic analyzer only sees executed schedules.
/// For a selection of benchmarks with seeded harmful violations we run many
/// randomized executions on the causal-store simulator (random sessions,
/// arguments, and delivery orders) and measure how often the dynamic DSG
/// analysis observes any violation — versus the static analysis, which
/// flags each app once and for all.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "apps/Apps.h"
#include "frontend/Frontend.h"
#include "store/DynamicAnalyzer.h"
#include "store/Interpreter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace c4;
using namespace c4bench;

namespace {

/// Runs \p Rounds random transactions of \p P on a fresh 2-replica store
/// with random delivery; returns whether the dynamic analyzer flags the
/// resulting execution.
bool randomExecutionFlags(const CompiledProgram &P, Rng &R,
                          unsigned Rounds) {
  CausalStore Store(*P.Sch, 2);
  ProgramRunner Runner(P, Store);
  std::vector<unsigned> Sessions = {Store.openSession(0),
                                    Store.openSession(1)};
  // Distinct session constants per session; shared small argument domain
  // so keys collide often.
  for (unsigned S : Sessions)
    for (const std::string &Name : P.AST->SessionConsts)
      Runner.setSessionConst(S, Name, 100 + S);
  std::string Error;
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    const TxnDecl &T =
        P.AST->Txns[R.below(P.AST->Txns.size())];
    std::vector<int64_t> Args;
    for (size_t I = 0; I != T.Params.size(); ++I)
      Args.push_back(R.range(1, 2));
    unsigned S = Sessions[R.below(Sessions.size())];
    if (!Runner.runTxn(S, T.Name, Args, Error))
      return false;
    while (R.chance(1, 2) && Store.deliverRandom(R)) {
    }
  }
  Store.deliverAll();
  return analyzeDynamic(Store.history(), Store.schedule())
      .violationFound();
}

} // namespace

static const int StdoutLineBuffered = []() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  return 0;
}();

int main(int Argc, char **Argv) {
  unsigned Trials = 200, Rounds = 6;
  for (int I = 1; I != Argc; ++I) {
    if (!std::strcmp(Argv[I], "--trials") && I + 1 != Argc)
      Trials = static_cast<unsigned>(std::atoi(Argv[++I]));
    if (!std::strcmp(Argv[I], "--rounds") && I + 1 != Argc)
      Rounds = static_cast<unsigned>(std::atoi(Argv[++I]));
  }

  std::printf("Static vs dynamic detection (§9.5): %u random executions "
              "per app,\n%u transactions each, 2 replicas, random "
              "delivery.\n\n",
              Trials, Rounds);
  std::printf("%-20s %-28s %s\n", "Program", "static (harmful found?)",
              "dynamic detection rate");

  const char *Selected[] = {"Tetris",          "Color Line",
                            "cassandra-twitter", "cassieq-core",
                            "dstax-queueing",  "Sky Locale"};
  for (const BenchApp &App : benchApps()) {
    bool Chosen = false;
    for (const char *Name : Selected)
      Chosen = Chosen || !std::strcmp(Name, App.Name);
    if (!Chosen)
      continue;
    CompileResult Compiled = compileC4L(App.Source);
    if (!Compiled.ok()) {
      std::printf("%s: COMPILE ERROR: %s\n", App.Name,
                  Compiled.Error.c_str());
      continue;
    }
    const CompiledProgram &P = *Compiled.Program;

    AnalysisResult Static = analyze(*P.History);
    unsigned Harmful = 0;
    for (const Violation &V : Static.Violations)
      if (classify(App, V.TxnNames) == ViolationClass::Harmful)
        ++Harmful;

    Rng R(0xD15EA5E);
    unsigned Detected = 0;
    for (unsigned Trial = 0; Trial != Trials; ++Trial)
      if (randomExecutionFlags(P, R, Rounds))
        ++Detected;

    std::printf("%-20s %-28s %u / %u (%.0f%%)\n", App.Name,
                Harmful ? "yes (always: all timings)" : "no harmful found",
                Detected, Trials, 100.0 * Detected / Trials);
  }
  std::printf("\nThe static analysis flags every app with a seeded bug "
              "unconditionally; the\ndynamic analyzer needs the racy "
              "timing to occur (paper: three TouchDevelop bugs\nwere "
              "missed entirely by the dynamic analysis).\n");
  return 0;
}
