//===- bench/bench_fig13a.cpp - Reproduces Figure 13a ---------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 13a: the effect of the four precision features
/// (commutativity, absorption, constraints, control flow) on the SMT stage.
/// For every benchmark we compare the violations reported with all features
/// off (the precision of the plain SSG approach) against the full
/// configuration: the difference is the set of false alarms the SMT stage
/// eliminates. Each eliminated alarm is attributed to the set of features
/// *necessary* to eliminate it (disabling that feature alone brings the
/// alarm back) — the Venn regions of the figure.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "apps/Apps.h"
#include "frontend/Frontend.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>

using namespace c4;
using namespace c4bench;

namespace {

/// A violation's identity across runs: its sorted transaction-name set.
std::set<std::string> violationKeys(const AnalysisResult &R) {
  std::set<std::string> Keys;
  for (const Violation &V : R.Violations) {
    std::string Key;
    for (const std::string &N : V.TxnNames)
      Key += N + ",";
    Keys.insert(Key);
  }
  return Keys;
}

AnalysisResult runWith(const CompiledProgram &P, AnalysisFeatures F) {
  AnalyzerOptions O;
  O.Features = F;
  return analyze(*P.History, O);
}

const char *FeatureNames[4] = {"commutativity", "absorption", "constraints",
                               "control-flow"};

AnalysisFeatures withFeature(AnalysisFeatures Base, unsigned I, bool On) {
  switch (I) {
  case 0:
    Base.Commutativity = On;
    break;
  case 1:
    Base.Absorption = On;
    break;
  case 2:
    Base.Constraints = On;
    break;
  case 3:
    Base.ControlFlow = On;
    break;
  }
  return Base;
}

} // namespace

static const int StdoutLineBuffered = []() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  return 0;
}();

int main(int Argc, char **Argv) {
  // Six analysis runs per app make the full suite slow on one core; the
  // default covers a representative subset, --full runs all 28.
  bool Full = false;
  for (int I = 1; I != Argc; ++I)
    Full = Full || !std::strcmp(Argv[I], "--full");
  const char *Subset[] = {
      "Cloud List",   "Save Passwords", "Tetris",        "FieldGPS",
      "Sky Locale",   "Events",         "Unique Poll",   "cassandra-lock",
      "cassatwitter", "cassieq-core",   "dstax-queueing", "twissandra"};

  std::printf("Figure 13a: false alarms eliminated by the SMT stage, "
              "attributed to the\nfeature sets necessary to eliminate them "
              "(per domain).%s\n\n",
              Full ? "" : " [subset; use --full for all 28 apps]");

  // Per domain: region (bitmask over the four features) -> count.
  std::map<std::string, std::map<unsigned, unsigned>> Regions;
  std::map<std::string, unsigned> Eliminated;

  for (const BenchApp &App : benchApps()) {
    if (!Full) {
      bool Chosen = false;
      for (const char *Name : Subset)
        Chosen = Chosen || !std::strcmp(Name, App.Name);
      if (!Chosen)
        continue;
    }
    CompileResult Compiled = compileC4L(App.Source);
    if (!Compiled.ok()) {
      std::printf("%s: COMPILE ERROR: %s\n", App.Name,
                  Compiled.Error.c_str());
      return 1;
    }
    const CompiledProgram &P = *Compiled.Program;

    // Baseline: the four features off (asymmetry/uniqueness follow the
    // paper and stay on; disabling commutativity already degrades the
    // asymmetric formulas to booleans).
    AnalysisFeatures AllOff;
    AllOff.Commutativity = AllOff.Absorption = false;
    AllOff.Constraints = AllOff.ControlFlow = false;
    std::set<std::string> Base = violationKeys(runWith(P, AllOff));
    std::set<std::string> FullOn =
        violationKeys(runWith(P, AnalysisFeatures::all()));

    // Which alarms come back when one feature is disabled?
    std::set<std::string> Without[4];
    for (unsigned I = 0; I != 4; ++I)
      Without[I] = violationKeys(
          runWith(P, withFeature(AnalysisFeatures::all(), I, false)));

    for (const std::string &Key : Base) {
      if (FullOn.count(Key))
        continue; // survives the full configuration: not a false alarm
      ++Eliminated[App.Domain];
      unsigned Region = 0;
      for (unsigned I = 0; I != 4; ++I)
        if (Without[I].count(Key))
          Region |= 1u << I; // feature I is necessary
      ++Regions[App.Domain][Region];
    }
    std::printf("  %-18s analyzed (baseline alarms %zu, full %zu)\n",
                App.Name, Base.size(), FullOn.size());
  }

  for (const auto &[Domain, Counts] : Regions) {
    std::printf("\n%s: %u false alarms eliminated by the SMT stage\n",
                Domain.c_str(), Eliminated[Domain]);
    for (const auto &[Region, Count] : Counts) {
      std::string Label;
      for (unsigned I = 0; I != 4; ++I)
        if (Region & (1u << I)) {
          if (!Label.empty())
            Label += " + ";
          Label += FeatureNames[I];
        }
      if (Label.empty())
        Label = "any single feature suffices";
      std::printf("  requires %-55s : %u\n", Label.c_str(), Count);
    }
  }
  std::printf("\n(paper: TouchDevelop 31 eliminated, Cassandra 139; all "
              "four features essential,\nwith commutativity mattering most "
              "for Cassandra and absorption for TouchDevelop)\n");
  return 0;
}
