//===- bench/apps/Apps.h - The Table 1 benchmark suite ----------*- C++ -*-===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 28 benchmark applications of the paper's Table 1: 17 TouchDevelop
/// apps and 11 Cassandra/Java projects, modeled in C4L (see DESIGN.md's
/// substitution table). Each model reproduces the original's transaction
/// structure (the T column matches exactly; E approximately) and the access
/// patterns behind its reported violations.
///
/// The paper classifies violations by manual inspection into harmful (E),
/// harmless (H) and false alarms (F). We encode that judgment as data: each
/// app lists classification rules keyed by the violation's syntactic
/// transaction set; unmatched violations default to harmless.
///
//===----------------------------------------------------------------------===//

#ifndef C4_BENCH_APPS_H
#define C4_BENCH_APPS_H

#include <string>
#include <vector>

namespace c4bench {

/// Violation classification outcome.
enum class ViolationClass { Harmful, Harmless, FalseAlarm };

/// One classification rule: a violation whose transaction-name set equals
/// \p Txns (sorted) gets \p Class.
struct ClassRule {
  std::vector<std::string> Txns;
  ViolationClass Class;
};

/// Table 1 row values as reported by the paper (for side-by-side output).
struct PaperRow {
  unsigned E, H, F;
};

/// One benchmark application.
struct BenchApp {
  const char *Name;
  const char *Domain; ///< "TouchDevelop" or "Cassandra"
  const char *Source; ///< C4L program text
  std::vector<ClassRule> Rules;
  unsigned PaperT, PaperE;
  PaperRow PaperUnfiltered, PaperFiltered;
};

/// All 28 applications (TouchDevelop first, then Cassandra, Table 1 order).
const std::vector<BenchApp> &benchApps();

/// Classifies a violation by its sorted transaction-name set.
ViolationClass classify(const BenchApp &App,
                        const std::vector<std::string> &Txns);

} // namespace c4bench

#endif // C4_BENCH_APPS_H
