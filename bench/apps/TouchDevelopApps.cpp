//===- bench/apps/TouchDevelopApps.cpp - 17 TouchDevelop models -----------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C4L models of the 17 TouchDevelop benchmarks of Table 1 (cloud-backed
/// mobile apps synchronized through the global sequence protocol). Harmful
/// patterns modeled: read-modify-write high scores (Tetris, Color Line),
/// guarded-creation uniqueness (Sky Locale), additions racing deletions
/// (Events, Cloud Card), and lost-update counters (Relatd).
///
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

namespace c4bench {
std::vector<BenchApp> touchDevelopApps();
} // namespace c4bench

using namespace c4bench;

std::vector<BenchApp> c4bench::touchDevelopApps() {
  std::vector<BenchApp> Apps;

  Apps.push_back(
      {"Cloud List", "TouchDevelop",
       R"(
container table Items;
atomicset list { Items }
txn addItem(text) {
  let r = Items.add_row();
  Items.set(r, "text", text);
}
txn removeItem(r) { Items.del(r); }
txn toggleItem(r, done) { Items.set(r, "done", done); }
txn showList(r) {
  let t = Items.get(r, "text");
  let d = Items.get(r, "done");
  let n = Items.size();
  display(t); display(d); display(n);
}
)",
       {},
       4, 7, {0, 3, 0}, {0, 0, 0}});

  Apps.push_back(
      {"Super Chat", "TouchDevelop",
       R"(
container table Msgs;
container table Profiles;
atomicset messages { Msgs }
atomicset profiles { Profiles }
session me;
txn postMessage(text, room) {
  let r = Msgs.add_row();
  Msgs.set(r, "text", text);
  Msgs.set(r, "room", room);
  Msgs.set(r, "author", me);
}
txn editMessage(r, text) {
  let a = Msgs.get(r, "author");
  if (a == 0) { skip; } else { Msgs.set(r, "text", text); }
}
txn deleteMessage(r) { Msgs.del(r); }
txn loadChat(r) {
  let t = Msgs.get(r, "text");
  let ro = Msgs.get(r, "room");
  let a = Msgs.get(r, "author");
  let n = Msgs.size();
  display(t); display(ro); display(a); display(n);
}
txn setNick(nick) { Profiles.set(me, "nick", nick); }
txn setStatus(st) { Profiles.set(me, "status", st); }
txn showProfile(u) {
  let n = Profiles.get(u, "nick");
  let s = Profiles.get(u, "status");
  display(n); display(s);
}
txn joinRoom(room) {
  let e = Msgs.contains(room);
  Profiles.add(me, "rooms", room);
  display(e);
}
)",
       {},
       8, 28, {0, 7, 0}, {0, 3, 0}});

  Apps.push_back(
      {"Save Passwords", "TouchDevelop",
       R"(
container table Vault;
container map Master;
atomicset vault { Vault }
atomicset master { Master }
txn savePassword(site, pw) {
  Vault.set(site, "pw", pw);
  Vault.set(site, "saved", 1);
}
txn getPassword(site) {
  let p = Vault.get(site, "pw");
  display(p);
}
txn deletePassword(site) { Vault.del(site); }
txn listSites(site) {
  let n = Vault.size();
  let s = Vault.get(site, "saved");
  display(n); display(s);
}
txn setMaster(m) { Master.put("key", m); }
txn checkMaster(m) {
  let k = Master.get("key");
  if (k == 0) { Master.put("key", m); }
}
// The unguarded cross-container wipe is the app's reported anomaly;
// keep it un-grouped so the analysis can observe it. c4l-allow C4L-W004
txn wipe(site) { Vault.del(site); Master.remove("key"); }
)",
       {},
       7, 13, {0, 11, 2}, {0, 1, 0}});

  Apps.push_back(
      {"EC2 Demo Chat", "TouchDevelop",
       R"(
container table Chat;
atomicset chat { Chat }
txn post(text) {
  let r = Chat.add_row();
  Chat.set(r, "text", text);
}
txn show(r) {
  let t = Chat.get(r, "text");
  let n = Chat.size();
  display(t); display(n);
}
)",
       {},
       2, 4, {0, 1, 0}, {0, 0, 0}});

  Apps.push_back(
      {"Contest Voting", "TouchDevelop",
       R"(
container counter Votes;
atomicset votes { Votes }
txn vote() { Votes.inc(1); }
txn results() {
  let n = Votes.read();
  display(n);
}
)",
       {},
       2, 3, {0, 1, 0}, {0, 0, 0}});

  Apps.push_back(
      {"Chatter Box", "TouchDevelop",
       R"(
container table Posts;
container table Users;
atomicset posts { Posts }
atomicset users { Users }
session me;
txn post(text, topic) {
  let r = Posts.add_row();
  Posts.set(r, "text", text);
  Posts.set(r, "topic", topic);
  Posts.set(r, "by", me);
}
txn readPosts(r) {
  let t = Posts.get(r, "text");
  let to = Posts.get(r, "topic");
  let b = Posts.get(r, "by");
  let n = Posts.size();
  display(t); display(to); display(b); display(n);
}
txn setHandle(h) {
  Users.set(me, "handle", h);
  Users.set(me, "active", 1);
}
txn whois(u) {
  let h = Users.get(u, "handle");
  let a = Users.get(u, "active");
  display(h); display(a);
}
txn purge(r) {
  let old = Posts.get(r, "topic");
  if (old == 0) { Posts.del(r); }
}
)",
       {},
       5, 19, {0, 5, 4}, {0, 0, 0}});

  Apps.push_back(
      {"Tetris", "TouchDevelop",
       R"(
container table Scores;
atomicset scores { Scores }
session me;
txn saveScore(s) {
  let hi = Scores.get(me, "hi");
  if (hi < s) { Scores.set(me, "hi", s); }
}
txn syncBest(s) {
  let b = Scores.get("global", "hi");
  if (b < s) {
    Scores.set("global", "hi", s);
    Scores.set("global", "by", me);
  }
}
txn leaderboard() {
  let b = Scores.get("global", "hi");
  let w = Scores.get("global", "by");
  let mine = Scores.get(me, "hi");
  display(b); display(w); display(mine);
}
)",
       {{{"syncBest"}, ViolationClass::Harmful},
        {{"saveScore"}, ViolationClass::Harmful}},
       3, 12, {3, 0, 0}, {3, 0, 0}});

  Apps.push_back(
      {"NuvolaList 2", "TouchDevelop",
       R"(
container table Tasks;
atomicset tasks { Tasks }
txn addTask(text) {
  let r = Tasks.add_row();
  Tasks.set(r, "text", text);
}
txn completeTask(r) { Tasks.set(r, "done", 1); }
txn renameTask(r, text) { Tasks.set(r, "text", text); }
txn removeTask(r) { Tasks.del(r); }
txn showTasks(r) {
  let t = Tasks.get(r, "text");
  let d = Tasks.get(r, "done");
  let n = Tasks.size();
  display(t); display(d); display(n);
}
)",
       {},
       5, 9, {0, 8, 0}, {0, 0, 0}});

  Apps.push_back(
      {"FieldGPS", "TouchDevelop",
       R"(
container table Fixes;
atomicset fixes { Fixes }
session dev;
txn recordFix(lat, lon) {
  Fixes.set(dev, "lat", lat);
  Fixes.set(dev, "lon", lon);
}
txn showFix() {
  let la = Fixes.get(dev, "lat");
  let lo = Fixes.get(dev, "lon");
  display(la); display(lo);
}
txn hasFix() {
  let e = Fixes.contains(dev);
  display(e);
}
txn exportFix() {
  let la = Fixes.get(dev, "lat");
  display(la);
}
)",
       {},
       4, 5, {0, 0, 0}, {0, 0, 0}});

  Apps.push_back(
      {"Instant Poll", "TouchDevelop",
       R"(
container counter Yes;
container counter No;
atomicset poll { Yes, No }
txn voteYes() { Yes.inc(1); }
txn voteNo() { No.inc(1); }
txn results() {
  let y = Yes.read();
  let n = No.read();
  display(y); display(n);
}
txn adjust(d) { Yes.inc(d); }
)",
       {},
       4, 6, {0, 2, 0}, {0, 0, 0}});

  Apps.push_back(
      {"Expense Rec.", "TouchDevelop",
       R"(
container table Expenses;
container map Budget;
atomicset expenses { Expenses }
atomicset budget { Budget }
txn addExpense(amount, what) {
  let r = Expenses.add_row();
  Expenses.set(r, "amount", amount);
  Expenses.set(r, "what", what);
}
txn removeExpense(r) { Expenses.del(r); }
txn showExpenses(r) {
  let a = Expenses.get(r, "amount");
  let n = Expenses.size();
  display(a); display(n);
}
txn setBudget(b) { Budget.put("limit", b); }
txn checkBudget(spent) {
  let l = Budget.get("limit");
  if (l < spent) { Budget.put("over", 1); }
}
)",
       {{{"checkBudget"}, ViolationClass::FalseAlarm}},
       5, 9, {0, 1, 1}, {0, 0, 0}});

  Apps.push_back(
      {"Sky Locale", "TouchDevelop",
       R"(
container table Names;
container table Strings;
container table Ratings;
atomicset names { Names }
atomicset strings { Strings }
atomicset ratings { Ratings }
session me;
txn claimName(n) {
  let e = Names.contains(n);
  if (!e) { Names.set(n, "owner", me); }
}
txn releaseName(n) { Names.del(n); }
txn whoOwns(n) {
  let o = Names.get(n, "owner");
  display(o);
}
txn addString(lang, text) {
  let r = Strings.add_row();
  Strings.set(r, "lang", lang);
  Strings.set(r, "text", text);
}
txn translate(r, text) { Strings.set(r, "text", text); }
txn getString(r) {
  let t = Strings.get(r, "text");
  let l = Strings.get(r, "lang");
  display(t); display(l);
}
txn removeString(r) { Strings.del(r); }
txn countStrings() {
  let n = Strings.size();
  display(n);
}
txn rate(r, v) { Ratings.set(r, me, v); }
txn showRating(r, u) {
  let v = Ratings.get(r, u);
  display(v);
}
txn clearRatings(r) { Ratings.del(r); }
txn myName(n) {
  let o = Names.get(n, "owner");
  let mine = Names.contains(n);
  display(o); display(mine);
}
)",
       {{{"claimName"}, ViolationClass::Harmful}},
       12, 32, {1, 34, 0}, {1, 4, 0}});

  Apps.push_back(
      {"Events", "TouchDevelop",
       R"(
container table Events;
atomicset events { Events }
session me;
txn createEvent(title, when, where, cap) {
  let r = Events.add_row();
  Events.set(r, "title", title);
  Events.set(r, "when", when);
  Events.set(r, "where", where);
  Events.set(r, "cap", cap);
  Events.set(r, "open", 1);
}
txn rsvp(r) {
  let open = Events.get(r, "open");
  if (open == 1) { Events.add(r, "guests", me); }
}
txn cancelEvent(r) { Events.del(r); }
txn showEvent(r) {
  let t = Events.get(r, "title");
  let w = Events.get(r, "when");
  let wh = Events.get(r, "where");
  let c = Events.get(r, "cap");
  let o = Events.get(r, "open");
  let going = Events.scontains(r, "guests", me);
  let n = Events.size();
  display(t); display(w); display(wh); display(c);
  display(o); display(going); display(n);
}
)",
       {{{"cancelEvent", "rsvp"}, ViolationClass::Harmful}},
       4, 29, {1, 1, 0}, {1, 0, 0}});

  Apps.push_back(
      {"Cloud Card", "TouchDevelop",
       R"(
container table Cards;
container table Shares;
atomicset cards { Cards }
atomicset shares { Shares }
session me;
txn createCard(name, phone) {
  let r = Cards.add_row();
  Cards.set(r, "name", name);
  Cards.set(r, "phone", phone);
}
txn updateCard(r, phone) {
  let e = Cards.contains(r);
  if (e) { Cards.set(r, "phone", phone); }
}
txn deleteCard(r) { Cards.del(r); }
txn showCard(r) {
  let n = Cards.get(r, "name");
  let p = Cards.get(r, "phone");
  display(n); display(p);
}
txn shareCard(r, u) { Shares.add(r, "with", u); }
txn unshareCard(r, u) { Shares.sremove(r, "with", u); }
txn sharedWithMe(r) {
  let s = Shares.scontains(r, "with", me);
  display(s);
}
txn countCards() {
  let n = Cards.size();
  display(n);
}
txn setTheme(t) { Cards.set(me, "theme", t); }
)",
       {{{"deleteCard", "updateCard"}, ViolationClass::Harmful}},
       9, 25, {1, 5, 0}, {1, 0, 0}});

  Apps.push_back(
      {"Relatd", "TouchDevelop",
       R"(
container table People;
container table Posts;
container map Karma;
atomicset people { People }
atomicset posts { Posts }
atomicset karma { Karma }
session me;
txn addPerson(name) {
  let r = People.add_row();
  People.set(r, "name", name);
}
txn relate(p, q) { People.add(p, "rel", q); }
txn unrelate(p, q) { People.sremove(p, "rel", q); }
txn related(p, q) {
  let e = People.scontains(p, "rel", q);
  display(e);
}
txn renamePerson(p, name) { People.set(p, "name", name); }
txn removePerson(p) { People.del(p); }
txn showPerson(p) {
  let n = People.get(p, "name");
  let c = People.size();
  display(n); display(c);
}
txn post(text) {
  let r = Posts.add_row();
  Posts.set(r, "text", text);
  Posts.set(r, "by", me);
}
txn deletePost(r) { Posts.del(r); }
txn feed(r) {
  let t = Posts.get(r, "text");
  let b = Posts.get(r, "by");
  display(t); display(b);
}
txn bumpKarma(u, k) {
  let c = Karma.get(u);
  if (c < k) { Karma.put(u, k); }
}
txn showKarma(u) {
  let k = Karma.get(u);
  display(k);
}
txn resetKarma(u) { Karma.remove(u); }
txn editPost(r, text) {
  let b = Posts.get(r, "by");
  if (b == 0) { skip; } else { Posts.set(r, "text", text); }
}
)",
       {{{"bumpKarma"}, ViolationClass::Harmful}},
       14, 69, {1, 18, 0}, {1, 3, 0}});

  Apps.push_back(
      {"Color Line", "TouchDevelop",
       R"(
container map Best;
atomicset best { Best }
session me;
txn saveBest(s) {
  let b = Best.get(me);
  if (b < s) { Best.put(me, s); }
}
txn saveGlobal(s) {
  let g = Best.get("global");
  if (g < s) { Best.put("global", s); }
}
txn showBest() {
  let g = Best.get("global");
  let mine = Best.get(me);
  display(g); display(mine);
}
)",
       {{{"saveBest"}, ViolationClass::Harmful},
        {{"saveGlobal"}, ViolationClass::Harmful}},
       3, 10, {3, 0, 0}, {3, 0, 0}});

  Apps.push_back(
      {"Unique Poll", "TouchDevelop",
       R"(
container table Votes;
atomicset votes { Votes }
session me;
txn vote(opt) { Votes.set(me, "choice", opt); }
txn retract() { Votes.del(me); }
txn hasVoted() {
  let e = Votes.contains(me);
  display(e);
}
txn tally() {
  let n = Votes.size();
  display(n);
}
)",
       {},
       4, 4, {0, 4, 0}, {0, 0, 0}});

  return Apps;
}
