//===- bench/apps/CassandraApps.cpp - 11 Cassandra/Java models ------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C4L models of the 11 open-source Cassandra projects of Table 1. Harmful
/// patterns modeled: username-uniqueness registration races
/// (cassandra-twitter, cassatwitter), read-modify-write queue pointers
/// (cassieq-core, dstax-queueing). killrchat contributes the paper's
/// guarded-creation false alarms.
///
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

namespace c4bench {
std::vector<BenchApp> cassandraApps();
} // namespace c4bench

using namespace c4bench;

std::vector<BenchApp> c4bench::cassandraApps() {
  std::vector<BenchApp> Apps;

  Apps.push_back(
      {"cassandra-lock", "Cassandra",
       R"(
// Lease-per-client locking: every client manages its own lease row, so all
// conflicting accesses are session-local and the library is serializable.
container table Leases;
session me;
txn acquire(t) { Leases.set(me, "until", t); }
txn release() { Leases.set(me, "until", 0); }
txn held() {
  let e = Leases.get(me, "until");
  display(e);
}
)",
       {},
       3, 3, {0, 0, 0}, {0, 0, 0}});

  Apps.push_back(
      {"cassandra-twitter", "Cassandra",
       R"(
container table Users;
container table Tweets;
session me;
txn register(name, pw) {
  let e = Users.contains(name);
  if (!e) {
    Users.set(name, "pw", pw);
    Users.set(name, "created", 1);
  }
}
// Tweets and the per-user timeline are updated without a batch — the
// cross-container anomaly reported for this app. c4l-allow C4L-W004
txn tweet(text) {
  let r = Tweets.add_row();
  Tweets.set(r, "text", text);
  Tweets.set(r, "by", me);
  Users.add(me, "tweets", r);
}
txn follow(who) {
  let e = Users.contains(who);
  if (e) { Users.add(me, "follows", who); }
}
txn timeline(r) {
  let t = Tweets.get(r, "text");
  let b = Tweets.get(r, "by");
  let n = Tweets.size();
  display(t); display(b); display(n);
}
txn profile(u) {
  let pw = Users.get(u, "pw");
  let c = Users.get(u, "created");
  if (c == 1) { display(pw); }
}
)",
       {{{"register"}, ViolationClass::Harmful}},
       5, 26, {1, 5, 0}, {1, 1, 0}});

  Apps.push_back(
      {"cassatwitter", "Cassandra",
       R"(
container table Users;
container table Lines;
session me;
txn signup(name) {
  let taken = Users.contains(name);
  if (!taken) { Users.set(name, "active", 1); }
}
txn post(text) {
  let r = Lines.add_row();
  Lines.set(r, "text", text);
  Lines.set(r, "by", me);
}
txn follow(who) { Users.add(me, "follows", who); }
txn unfollow(who) { Users.sremove(me, "follows", who); }
txn isFollowing(who) {
  let f = Users.scontains(me, "follows", who);
  display(f);
}
txn read(r) {
  let t = Lines.get(r, "text");
  let b = Lines.get(r, "by");
  display(t); display(b);
}
)",
       {{{"signup"}, ViolationClass::Harmful}},
       6, 19, {1, 6, 0}, {1, 1, 0}});

  Apps.push_back(
      {"cassieq-core", "Cassandra",
       R"(
container map Ptr;
container table Q;
txn enqueue(v) {
  let r = Q.add_row();
  Q.set(r, "val", v);
}
txn dequeue(next) {
  let h = Ptr.get("reader");   // h feeds the new pointer: business logic
  Ptr.put("reader", next);
  return h;
}
txn advanceInvis(next) {
  let i = Ptr.get("invis");
  Ptr.put("invis", next);
  return i;
}
txn ack(r) { Q.del(r); }
txn peek(r) {
  let v = Q.get(r, "val");
  display(v);
}
txn depth() {
  let n = Q.size();
  display(n);
}
txn initQueue() { Ptr.put("reader", 0); }
)",
       {{{"dequeue"}, ViolationClass::Harmful},
        {{"advanceInvis"}, ViolationClass::Harmful}},
       7, 10, {2, 2, 0}, {2, 1, 0}});

  Apps.push_back(
      {"curr-exchange", "Cassandra",
       R"(
container map Rates;
txn setRate(pair, rate) { Rates.put(pair, rate); }
txn getRate(pair) {
  let r = Rates.get(pair);
  display(r);
}
)",
       {},
       2, 2, {0, 1, 0}, {0, 0, 0}});

  Apps.push_back(
      {"dstax-queueing", "Cassandra",
       R"(
container map Meta;
container table Items;
// The queue metadata and item table are deliberately not grouped: their
// divergence under causal consistency is the modeled bug. c4l-allow C4L-W004
txn produce(v, tail) {
  let t = Meta.get("tail");    // used to chain the new tail
  Items.set(tail, "val", v);
  Meta.put("tail", tail);
  return t;
}
// c4l-allow C4L-W004
txn consume(next) {
  let h = Meta.get("head");
  let v = Items.get(h, "val"); // the dequeued value: business logic
  Items.del(h);
  Meta.put("head", next);
  return v;
}
)",
       {{{"consume"}, ViolationClass::Harmful},
        {{"consume", "produce"}, ViolationClass::Harmful}},
       2, 8, {2, 0, 0}, {2, 0, 0}});

  Apps.push_back(
      {"killrchat", "Cassandra",
       R"(
container table Rooms;
container table Accounts;
container table Msgs;
session me;
txn createAccount(login) {
  let e = Accounts.contains(login);
  if (!e) { Accounts.set(login, "owner", me); }
}
txn deleteAccount(login) { Accounts.del(login); }
txn createRoom(name) {
  let e = Rooms.contains(name);
  if (!e) {
    Rooms.set(name, "creator", me);
    Rooms.add(name, "members", me);
  }
}
txn deleteRoom(name) { Rooms.del(name); }
txn joinRoom(name) {
  let e = Rooms.contains(name);
  if (e) { Rooms.add(name, "members", me); }
}
txn leaveRoom(name) { Rooms.sremove(name, "members", me); }
txn postMessage(room, text) {
  let r = Msgs.add_row();
  Msgs.set(r, "room", room);
  Msgs.set(r, "text", text);
}
txn fetchMessages(r) {
  let t = Msgs.get(r, "text");
  let ro = Msgs.get(r, "room");
  display(t); display(ro);
}
txn listRooms() {
  let n = Rooms.size();
  display(n);
}
txn roomMembers(name) {
  let m = Rooms.scontains(name, "members", me);
  display(m);
}
txn renameRoom(name, c) { Rooms.set(name, "creator", c); }
)",
       {{{"createAccount"}, ViolationClass::FalseAlarm},
        {{"createRoom"}, ViolationClass::FalseAlarm},
        {{"createRoom", "joinRoom"}, ViolationClass::FalseAlarm},
        {{"createAccount", "deleteAccount"}, ViolationClass::FalseAlarm}},
       11, 20, {0, 31, 13}, {0, 0, 4}});

  Apps.push_back(
      {"playlist", "Cassandra",
       R"(
container table Lists;
container table Songs;
session me;
txn createList(name) {
  let r = Lists.add_row();
  Lists.set(r, "name", name);
  Lists.set(r, "owner", me);
}
txn deleteList(r) { Lists.del(r); }
txn renameList(r, name) { Lists.set(r, "name", name); }
txn addSong(r, s) { Lists.add(r, "songs", s); }
txn removeSong(r, s) { Lists.sremove(r, "songs", s); }
txn hasSong(r, s) {
  let e = Lists.scontains(r, "songs", s);
  display(e);
}
txn showList(r) {
  let n = Lists.get(r, "name");
  let o = Lists.get(r, "owner");
  display(n); display(o);
}
txn addSongInfo(s, title, artist) {
  Songs.set(s, "title", title);
  Songs.set(s, "artist", artist);
}
txn songInfo(s) {
  let t = Songs.get(s, "title");
  let a = Songs.get(s, "artist");
  display(t); display(a);
}
txn countLists() {
  let n = Lists.size();
  display(n);
}
txn shareList(r, u) { Lists.add(r, "shared", u); }
)",
       {},
       11, 34, {0, 13, 0}, {0, 2, 0}});

  Apps.push_back(
      {"roomstore", "Cassandra",
       R"(
container table Log;
container table Rooms;
txn logMessage(room, text, who) {
  let r = Log.add_row();
  Log.set(r, "room", room);
  Log.set(r, "text", text);
  Log.set(r, "who", who);
}
txn getLog(r) {
  let t = Log.get(r, "text");
  let w = Log.get(r, "who");
  display(t); display(w);
}
txn createRoom(name, topic) { Rooms.set(name, "topic", topic); }
txn roomInfo(name) {
  let t = Rooms.get(name, "topic");
  display(t);
}
txn dropRoom(name) { Rooms.del(name); }
)",
       {},
       5, 13, {0, 4, 0}, {0, 0, 0}});

  Apps.push_back(
      {"shopping-cart", "Cassandra",
       R"(
// Carts are keyed by the owning session: no cross-session conflicts.
// Write-only within the analyzed scope by design. c4l-allow C4L-W001
container table Carts;
session me;
// The cart service is write-only: reads are served by a separate,
// strongly-consistent path, so the analyzed scope has no queries.
txn addToCart(item) { Carts.add(me, "items", item); }
txn removeFromCart(item) { Carts.sremove(me, "items", item); }
txn updateQty(item, q) { Carts.set(me, item, q); }
txn checkout() { Carts.set(me, "done", 1); }
)",
       {},
       4, 5, {0, 0, 0}, {0, 0, 0}});

  Apps.push_back(
      {"twissandra", "Cassandra",
       R"(
container table Users;
container table Tweets;
session me;
txn follow(who) { Users.add(me, "friends", who); }
txn unfollow(who) { Users.sremove(me, "friends", who); }
txn tweet(text) {
  let r = Tweets.add_row();
  Tweets.set(r, "text", text);
  Tweets.set(r, "by", me);
}
txn timeline(r) {
  let t = Tweets.get(r, "text");
  let b = Tweets.get(r, "by");
  display(t); display(b);
}
txn userline(r, u) {
  let t = Tweets.get(r, "text");
  let f = Users.scontains(me, "friends", u);
  display(t); display(f);
}
txn setBio(bio) { Users.set(me, "bio", bio); }
txn getBio(u) {
  let b = Users.get(u, "bio");
  let n = Tweets.size();
  if (n == 0) { display(b); }
}
)",
       {},
       7, 20, {0, 7, 0}, {0, 1, 0}});

  return Apps;
}
