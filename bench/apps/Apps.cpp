//===- bench/apps/Apps.cpp ------------------------------------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include <algorithm>

namespace c4bench {
std::vector<BenchApp> touchDevelopApps();
std::vector<BenchApp> cassandraApps();
} // namespace c4bench

using namespace c4bench;

const std::vector<BenchApp> &c4bench::benchApps() {
  static const std::vector<BenchApp> Apps = [] {
    std::vector<BenchApp> All = touchDevelopApps();
    std::vector<BenchApp> Cass = cassandraApps();
    All.insert(All.end(), std::make_move_iterator(Cass.begin()),
               std::make_move_iterator(Cass.end()));
    return All;
  }();
  return Apps;
}

ViolationClass c4bench::classify(const BenchApp &App,
                                 const std::vector<std::string> &Txns) {
  std::vector<std::string> Sorted = Txns;
  std::sort(Sorted.begin(), Sorted.end());
  for (const ClassRule &Rule : App.Rules) {
    std::vector<std::string> Key = Rule.Txns;
    std::sort(Key.begin(), Key.end());
    // A rule matches when its transactions are all on the violation.
    if (std::includes(Sorted.begin(), Sorted.end(), Key.begin(), Key.end()))
      return Rule.Class;
  }
  return ViolationClass::Harmless;
}
