//===- bench/bench_scaling.cpp - Microbenchmarks (google-benchmark) -------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaling microbenchmarks for the analyzer's stages (not a paper table;
/// DESIGN.md's "scaling (ours)" experiment): SSG construction vs program
/// size, unfolding enumeration vs session bound k, one SMT query, the full
/// staged pipeline, and causal-store simulator throughput. These quantify
/// the design choice behind the staged pipeline: the SSG stage is orders of
/// magnitude cheaper than an SMT query, so pre-filtering pays off.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"
#include "smt/Encoding.h"
#include "ssg/SSG.h"
#include "support/Format.h"
#include "store/CausalStore.h"
#include "unfold/Unfolder.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace c4;

namespace {

/// A synthetic program with N put/get transaction pairs on N containers.
std::string syntheticSource(unsigned N) {
  std::string Src;
  for (unsigned I = 0; I != N; ++I)
    Src += strf("container map M%u;\n", I);
  for (unsigned I = 0; I != N; ++I) {
    Src += strf("txn w%u(k, v) { M%u.put(k, v); }\n", I, I);
    Src += strf("txn r%u(k) { let x = M%u.get(k); return x; }\n", I, I);
  }
  return Src;
}

/// Shared compiled Figure 1 program for the per-stage benchmarks.
const CompiledProgram &fig1Program() {
  static CompileResult R = compileC4L("container map M;\n"
                                      "txn P(x, y) { M.put(x, y); }\n"
                                      "txn G(z) { let v = M.get(z); }\n");
  return *R.Program;
}

void BM_FrontendCompile(benchmark::State &State) {
  std::string Src = syntheticSource(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    CompileResult R = compileC4L(Src);
    benchmark::DoNotOptimize(R.ok());
  }
}
BENCHMARK(BM_FrontendCompile)->Arg(1)->Arg(4)->Arg(16);

void BM_GeneralSSG(benchmark::State &State) {
  CompileResult R = compileC4L(
      syntheticSource(static_cast<unsigned>(State.range(0))));
  const AbstractHistory &A = *R.Program->History;
  AnalysisFeatures F;
  for (auto _ : State) {
    SSG G(A, F);
    G.analyze();
    benchmark::DoNotOptimize(G.violations().size());
  }
}
BENCHMARK(BM_GeneralSSG)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_EnumerateUnfoldings(benchmark::State &State) {
  const CompiledProgram &P = fig1Program();
  unsigned K = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    bool Truncated = false;
    auto Us = enumerateUnfoldings(*P.History, K, 1000000, Truncated);
    benchmark::DoNotOptimize(Us.size());
  }
}
BENCHMARK(BM_EnumerateUnfoldings)->Arg(2)->Arg(3)->Arg(4);

void BM_InstantiatedSSG(benchmark::State &State) {
  const CompiledProgram &P = fig1Program();
  bool Truncated = false;
  auto Us = enumerateUnfoldings(*P.History, 2, 1000, Truncated);
  AnalysisFeatures F;
  for (auto _ : State) {
    for (const Unfolding &U : Us) {
      SSG G(U.H, F, U.SessionTags);
      G.analyze();
      bool T = false;
      benchmark::DoNotOptimize(G.candidateCycles(64, T).size());
    }
  }
}
BENCHMARK(BM_InstantiatedSSG);

void BM_SmtQuery(benchmark::State &State) {
  // One ϕ_cyclic query: the SC1-feasible unfolding of the Figure 1 program.
  const CompiledProgram &P = fig1Program();
  bool Truncated = false;
  auto Us = enumerateUnfoldings(*P.History, 2, 1000, Truncated);
  AnalysisFeatures F;
  for (auto _ : State) {
    unsigned Found = 0;
    for (const Unfolding &U : Us) {
      SSG G(U.H, F, U.SessionTags);
      G.analyze();
      bool T = false;
      auto Cands = G.candidateCycles(64, T);
      if (Cands.empty())
        continue;
      UnfoldingResult R = solveUnfolding(U, G, Cands, F);
      Found += R.Status == UnfoldingResult::CycleFound;
    }
    benchmark::DoNotOptimize(Found);
  }
}
BENCHMARK(BM_SmtQuery)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State &State) {
  CompileResult R = compileC4L(
      syntheticSource(static_cast<unsigned>(State.range(0))));
  for (auto _ : State) {
    AnalysisResult A = analyze(*R.Program->History);
    benchmark::DoNotOptimize(A.Violations.size());
  }
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_StoreCommitThroughput(benchmark::State &State) {
  TypeRegistry Reg;
  Schema Sch;
  unsigned M = Sch.addContainer("M", Reg.lookup("map"));
  const DataTypeSpec *T = Sch.container(M).Type;
  unsigned Put = T->opIndex(*T->findOp("put"));
  for (auto _ : State) {
    State.PauseTiming();
    CausalStore Store(Sch, 3);
    unsigned S = Store.openSession(0);
    State.ResumeTiming();
    for (int I = 0; I != 100; ++I) {
      Store.begin(S);
      Store.update(S, M, Put, {I % 7, I});
      Store.commit(S);
    }
    benchmark::DoNotOptimize(Store.history().numEvents());
  }
  State.SetItemsProcessed(State.iterations() * 100);
}
BENCHMARK(BM_StoreCommitThroughput);

} // namespace

BENCHMARK_MAIN();
