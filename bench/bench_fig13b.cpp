//===- bench/bench_fig13b.cpp - Reproduces Figure 13b ---------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 13b: how the two §9.1 filtering heuristics (atomic
/// sets, display code) relate to the harmful/harmless classification of the
/// reported violations. For each benchmark we run unfiltered, with each
/// filter alone, and with both, and attribute every unfiltered violation to
/// the filters that remove it. The paper's headline properties are checked:
/// no harmful violation is ever filtered, and most harmless ones are.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "apps/Apps.h"
#include "frontend/Frontend.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

using namespace c4;
using namespace c4bench;

namespace {

std::set<std::string> violationKeys(const AnalysisResult &R) {
  std::set<std::string> Keys;
  for (const Violation &V : R.Violations) {
    std::string Key;
    for (const std::string &N : V.TxnNames)
      Key += N + ",";
    Keys.insert(Key);
  }
  return Keys;
}

struct DomainStats {
  // [harmful=0 / harmless=1 / false alarm=2][by-atomic][by-display]
  unsigned Count[3][2][2] = {};
  unsigned HarmfulFiltered = 0;
};

} // namespace

static const int StdoutLineBuffered = []() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  return 0;
}();

int main() {
  std::map<std::string, DomainStats> Stats;

  for (const BenchApp &App : benchApps()) {
    CompileResult Compiled = compileC4L(App.Source);
    if (!Compiled.ok()) {
      std::printf("%s: COMPILE ERROR: %s\n", App.Name,
                  Compiled.Error.c_str());
      return 1;
    }
    const CompiledProgram &P = *Compiled.Program;

    AnalyzerOptions None;
    AnalysisResult RNone = analyze(*P.History, None);

    AnalyzerOptions Display;
    Display.DisplayFilter = true;
    AnalysisResult RDisplay = analyze(*P.History, Display);

    AnalyzerOptions Atomic;
    Atomic.UseAtomicSets = !P.AtomicSets.empty();
    Atomic.AtomicSets = P.AtomicSets;
    AnalysisResult RAtomic = analyze(*P.History, Atomic);

    std::set<std::string> DisplayKeys = violationKeys(RDisplay);
    std::set<std::string> AtomicKeys = violationKeys(RAtomic);

    DomainStats &D = Stats[App.Domain];
    for (const Violation &V : RNone.Violations) {
      std::string Key;
      for (const std::string &N : V.TxnNames)
        Key += N + ",";
      bool ByDisplay = !DisplayKeys.count(Key);
      bool ByAtomic = !AtomicKeys.count(Key);
      unsigned Class = 1;
      switch (classify(App, V.TxnNames)) {
      case ViolationClass::Harmful:
        Class = 0;
        break;
      case ViolationClass::Harmless:
        Class = 1;
        break;
      case ViolationClass::FalseAlarm:
        Class = 2;
        break;
      }
      ++D.Count[Class][ByAtomic ? 1 : 0][ByDisplay ? 1 : 0];
      if (Class == 0 && (ByDisplay || ByAtomic))
        ++D.HarmfulFiltered;
    }
    std::printf("  %-18s analyzed (%zu unfiltered violations)\n", App.Name,
                RNone.Violations.size());
  }

  for (const auto &[Domain, D] : Stats) {
    std::printf("\n%s:\n", Domain.c_str());
    const char *Classes[3] = {"harmful", "harmless", "false alarm"};
    for (unsigned C = 0; C != 3; ++C) {
      unsigned Neither = D.Count[C][0][0];
      unsigned AtomicOnly = D.Count[C][1][0];
      unsigned DisplayOnly = D.Count[C][0][1];
      unsigned Both = D.Count[C][1][1];
      unsigned Total = Neither + AtomicOnly + DisplayOnly + Both;
      if (!Total)
        continue;
      std::printf("  %-12s total %2u | filtered by: atomic-sets only %u, "
                  "display only %u, both %u, neither %u\n",
                  Classes[C], Total, AtomicOnly, DisplayOnly, Both,
                  Neither);
    }
    std::printf("  harmful violations filtered out: %u (paper: 0)\n",
                D.HarmfulFiltered);
  }
  std::printf("\n(paper: the display-code heuristic alone filtered 91%% of "
              "Cassandra's harmless\nviolations while preserving all "
              "harmful ones)\n");
  return 0;
}
