file(REMOVE_RECURSE
  "CMakeFiles/twitter_followers.dir/twitter_followers.cpp.o"
  "CMakeFiles/twitter_followers.dir/twitter_followers.cpp.o.d"
  "twitter_followers"
  "twitter_followers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_followers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
