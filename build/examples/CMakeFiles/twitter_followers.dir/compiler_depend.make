# Empty compiler generated dependencies file for twitter_followers.
# This may be replaced when dependencies are built.
