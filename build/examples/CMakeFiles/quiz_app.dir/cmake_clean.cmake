file(REMOVE_RECURSE
  "CMakeFiles/quiz_app.dir/quiz_app.cpp.o"
  "CMakeFiles/quiz_app.dir/quiz_app.cpp.o.d"
  "quiz_app"
  "quiz_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quiz_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
