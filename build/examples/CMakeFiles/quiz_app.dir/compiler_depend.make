# Empty compiler generated dependencies file for quiz_app.
# This may be replaced when dependencies are built.
