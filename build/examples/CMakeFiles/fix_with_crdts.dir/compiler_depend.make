# Empty compiler generated dependencies file for fix_with_crdts.
# This may be replaced when dependencies are built.
