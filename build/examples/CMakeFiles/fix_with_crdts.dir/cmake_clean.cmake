file(REMOVE_RECURSE
  "CMakeFiles/fix_with_crdts.dir/fix_with_crdts.cpp.o"
  "CMakeFiles/fix_with_crdts.dir/fix_with_crdts.cpp.o.d"
  "fix_with_crdts"
  "fix_with_crdts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_with_crdts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
