# Empty compiler generated dependencies file for bench_fig13a.
# This may be replaced when dependencies are built.
