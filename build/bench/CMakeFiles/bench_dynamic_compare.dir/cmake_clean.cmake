file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_compare.dir/bench_dynamic_compare.cpp.o"
  "CMakeFiles/bench_dynamic_compare.dir/bench_dynamic_compare.cpp.o.d"
  "bench_dynamic_compare"
  "bench_dynamic_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
