# Empty compiler generated dependencies file for bench_dynamic_compare.
# This may be replaced when dependencies are built.
