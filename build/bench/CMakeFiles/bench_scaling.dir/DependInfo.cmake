
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scaling.cpp" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/c4_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/c4_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/c4_store.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/c4_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/ssg/CMakeFiles/c4_ssg.dir/DependInfo.cmake"
  "/root/repo/build/src/unfold/CMakeFiles/c4_unfold.dir/DependInfo.cmake"
  "/root/repo/build/src/abstract/CMakeFiles/c4_abstract.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/c4_history.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/c4_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/c4_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
