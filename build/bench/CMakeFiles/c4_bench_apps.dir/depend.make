# Empty dependencies file for c4_bench_apps.
# This may be replaced when dependencies are built.
