file(REMOVE_RECURSE
  "CMakeFiles/c4_bench_apps.dir/apps/Apps.cpp.o"
  "CMakeFiles/c4_bench_apps.dir/apps/Apps.cpp.o.d"
  "CMakeFiles/c4_bench_apps.dir/apps/CassandraApps.cpp.o"
  "CMakeFiles/c4_bench_apps.dir/apps/CassandraApps.cpp.o.d"
  "CMakeFiles/c4_bench_apps.dir/apps/TouchDevelopApps.cpp.o"
  "CMakeFiles/c4_bench_apps.dir/apps/TouchDevelopApps.cpp.o.d"
  "libc4_bench_apps.a"
  "libc4_bench_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_bench_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
