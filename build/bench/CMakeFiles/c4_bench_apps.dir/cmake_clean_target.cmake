file(REMOVE_RECURSE
  "libc4_bench_apps.a"
)
