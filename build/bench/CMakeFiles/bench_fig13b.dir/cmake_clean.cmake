file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13b.dir/bench_fig13b.cpp.o"
  "CMakeFiles/bench_fig13b.dir/bench_fig13b.cpp.o.d"
  "bench_fig13b"
  "bench_fig13b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
