# Empty compiler generated dependencies file for c4-analyze.
# This may be replaced when dependencies are built.
