file(REMOVE_RECURSE
  "CMakeFiles/c4-analyze.dir/c4-analyze.cpp.o"
  "CMakeFiles/c4-analyze.dir/c4-analyze.cpp.o.d"
  "c4-analyze"
  "c4-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
