# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("spec")
subdirs("history")
subdirs("abstract")
subdirs("ssg")
subdirs("smt")
subdirs("unfold")
subdirs("analysis")
subdirs("frontend")
subdirs("store")
