
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/BasicTypes.cpp" "src/spec/CMakeFiles/c4_spec.dir/BasicTypes.cpp.o" "gcc" "src/spec/CMakeFiles/c4_spec.dir/BasicTypes.cpp.o.d"
  "/root/repo/src/spec/CRegType.cpp" "src/spec/CMakeFiles/c4_spec.dir/CRegType.cpp.o" "gcc" "src/spec/CMakeFiles/c4_spec.dir/CRegType.cpp.o.d"
  "/root/repo/src/spec/Cond.cpp" "src/spec/CMakeFiles/c4_spec.dir/Cond.cpp.o" "gcc" "src/spec/CMakeFiles/c4_spec.dir/Cond.cpp.o.d"
  "/root/repo/src/spec/DataType.cpp" "src/spec/CMakeFiles/c4_spec.dir/DataType.cpp.o" "gcc" "src/spec/CMakeFiles/c4_spec.dir/DataType.cpp.o.d"
  "/root/repo/src/spec/MaxRegType.cpp" "src/spec/CMakeFiles/c4_spec.dir/MaxRegType.cpp.o" "gcc" "src/spec/CMakeFiles/c4_spec.dir/MaxRegType.cpp.o.d"
  "/root/repo/src/spec/Registry.cpp" "src/spec/CMakeFiles/c4_spec.dir/Registry.cpp.o" "gcc" "src/spec/CMakeFiles/c4_spec.dir/Registry.cpp.o.d"
  "/root/repo/src/spec/TableType.cpp" "src/spec/CMakeFiles/c4_spec.dir/TableType.cpp.o" "gcc" "src/spec/CMakeFiles/c4_spec.dir/TableType.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/c4_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
