file(REMOVE_RECURSE
  "CMakeFiles/c4_spec.dir/BasicTypes.cpp.o"
  "CMakeFiles/c4_spec.dir/BasicTypes.cpp.o.d"
  "CMakeFiles/c4_spec.dir/CRegType.cpp.o"
  "CMakeFiles/c4_spec.dir/CRegType.cpp.o.d"
  "CMakeFiles/c4_spec.dir/Cond.cpp.o"
  "CMakeFiles/c4_spec.dir/Cond.cpp.o.d"
  "CMakeFiles/c4_spec.dir/DataType.cpp.o"
  "CMakeFiles/c4_spec.dir/DataType.cpp.o.d"
  "CMakeFiles/c4_spec.dir/MaxRegType.cpp.o"
  "CMakeFiles/c4_spec.dir/MaxRegType.cpp.o.d"
  "CMakeFiles/c4_spec.dir/Registry.cpp.o"
  "CMakeFiles/c4_spec.dir/Registry.cpp.o.d"
  "CMakeFiles/c4_spec.dir/TableType.cpp.o"
  "CMakeFiles/c4_spec.dir/TableType.cpp.o.d"
  "libc4_spec.a"
  "libc4_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
