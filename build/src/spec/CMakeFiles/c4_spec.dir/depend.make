# Empty dependencies file for c4_spec.
# This may be replaced when dependencies are built.
