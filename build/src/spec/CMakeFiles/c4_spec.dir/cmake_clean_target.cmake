file(REMOVE_RECURSE
  "libc4_spec.a"
)
