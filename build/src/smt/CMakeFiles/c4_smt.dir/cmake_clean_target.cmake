file(REMOVE_RECURSE
  "libc4_smt.a"
)
