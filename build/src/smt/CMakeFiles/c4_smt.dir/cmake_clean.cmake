file(REMOVE_RECURSE
  "CMakeFiles/c4_smt.dir/Encoding.cpp.o"
  "CMakeFiles/c4_smt.dir/Encoding.cpp.o.d"
  "libc4_smt.a"
  "libc4_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
