# Empty compiler generated dependencies file for c4_smt.
# This may be replaced when dependencies are built.
