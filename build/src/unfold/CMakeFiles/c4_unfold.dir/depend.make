# Empty dependencies file for c4_unfold.
# This may be replaced when dependencies are built.
