file(REMOVE_RECURSE
  "CMakeFiles/c4_unfold.dir/Unfolder.cpp.o"
  "CMakeFiles/c4_unfold.dir/Unfolder.cpp.o.d"
  "libc4_unfold.a"
  "libc4_unfold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_unfold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
