file(REMOVE_RECURSE
  "libc4_unfold.a"
)
