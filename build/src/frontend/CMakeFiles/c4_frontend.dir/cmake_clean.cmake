file(REMOVE_RECURSE
  "CMakeFiles/c4_frontend.dir/Builder.cpp.o"
  "CMakeFiles/c4_frontend.dir/Builder.cpp.o.d"
  "CMakeFiles/c4_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/c4_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/c4_frontend.dir/Parser.cpp.o"
  "CMakeFiles/c4_frontend.dir/Parser.cpp.o.d"
  "libc4_frontend.a"
  "libc4_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
