file(REMOVE_RECURSE
  "libc4_frontend.a"
)
