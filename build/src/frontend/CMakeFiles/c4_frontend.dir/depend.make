# Empty dependencies file for c4_frontend.
# This may be replaced when dependencies are built.
