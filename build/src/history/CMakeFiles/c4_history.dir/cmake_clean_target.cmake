file(REMOVE_RECURSE
  "libc4_history.a"
)
