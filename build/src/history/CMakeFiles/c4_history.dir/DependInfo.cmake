
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/history/DSG.cpp" "src/history/CMakeFiles/c4_history.dir/DSG.cpp.o" "gcc" "src/history/CMakeFiles/c4_history.dir/DSG.cpp.o.d"
  "/root/repo/src/history/History.cpp" "src/history/CMakeFiles/c4_history.dir/History.cpp.o" "gcc" "src/history/CMakeFiles/c4_history.dir/History.cpp.o.d"
  "/root/repo/src/history/RandomExecution.cpp" "src/history/CMakeFiles/c4_history.dir/RandomExecution.cpp.o" "gcc" "src/history/CMakeFiles/c4_history.dir/RandomExecution.cpp.o.d"
  "/root/repo/src/history/Relations.cpp" "src/history/CMakeFiles/c4_history.dir/Relations.cpp.o" "gcc" "src/history/CMakeFiles/c4_history.dir/Relations.cpp.o.d"
  "/root/repo/src/history/Schedule.cpp" "src/history/CMakeFiles/c4_history.dir/Schedule.cpp.o" "gcc" "src/history/CMakeFiles/c4_history.dir/Schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/c4_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/c4_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
