# Empty dependencies file for c4_history.
# This may be replaced when dependencies are built.
