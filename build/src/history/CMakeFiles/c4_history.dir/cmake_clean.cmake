file(REMOVE_RECURSE
  "CMakeFiles/c4_history.dir/DSG.cpp.o"
  "CMakeFiles/c4_history.dir/DSG.cpp.o.d"
  "CMakeFiles/c4_history.dir/History.cpp.o"
  "CMakeFiles/c4_history.dir/History.cpp.o.d"
  "CMakeFiles/c4_history.dir/RandomExecution.cpp.o"
  "CMakeFiles/c4_history.dir/RandomExecution.cpp.o.d"
  "CMakeFiles/c4_history.dir/Relations.cpp.o"
  "CMakeFiles/c4_history.dir/Relations.cpp.o.d"
  "CMakeFiles/c4_history.dir/Schedule.cpp.o"
  "CMakeFiles/c4_history.dir/Schedule.cpp.o.d"
  "libc4_history.a"
  "libc4_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
