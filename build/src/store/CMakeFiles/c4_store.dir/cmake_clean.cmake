file(REMOVE_RECURSE
  "CMakeFiles/c4_store.dir/CausalStore.cpp.o"
  "CMakeFiles/c4_store.dir/CausalStore.cpp.o.d"
  "CMakeFiles/c4_store.dir/DynamicAnalyzer.cpp.o"
  "CMakeFiles/c4_store.dir/DynamicAnalyzer.cpp.o.d"
  "CMakeFiles/c4_store.dir/Interpreter.cpp.o"
  "CMakeFiles/c4_store.dir/Interpreter.cpp.o.d"
  "libc4_store.a"
  "libc4_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
