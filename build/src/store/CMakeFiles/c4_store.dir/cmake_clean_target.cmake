file(REMOVE_RECURSE
  "libc4_store.a"
)
