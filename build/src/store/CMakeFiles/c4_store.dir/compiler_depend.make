# Empty compiler generated dependencies file for c4_store.
# This may be replaced when dependencies are built.
