file(REMOVE_RECURSE
  "libc4_abstract.a"
)
