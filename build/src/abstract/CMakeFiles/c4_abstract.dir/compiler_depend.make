# Empty compiler generated dependencies file for c4_abstract.
# This may be replaced when dependencies are built.
