file(REMOVE_RECURSE
  "CMakeFiles/c4_abstract.dir/AbstractHistory.cpp.o"
  "CMakeFiles/c4_abstract.dir/AbstractHistory.cpp.o.d"
  "CMakeFiles/c4_abstract.dir/Concretize.cpp.o"
  "CMakeFiles/c4_abstract.dir/Concretize.cpp.o.d"
  "libc4_abstract.a"
  "libc4_abstract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_abstract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
