file(REMOVE_RECURSE
  "libc4_analysis.a"
)
