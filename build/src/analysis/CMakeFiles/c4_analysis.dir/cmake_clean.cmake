file(REMOVE_RECURSE
  "CMakeFiles/c4_analysis.dir/Analyzer.cpp.o"
  "CMakeFiles/c4_analysis.dir/Analyzer.cpp.o.d"
  "libc4_analysis.a"
  "libc4_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
