# Empty compiler generated dependencies file for c4_analysis.
# This may be replaced when dependencies are built.
