file(REMOVE_RECURSE
  "CMakeFiles/c4_support.dir/Digraph.cpp.o"
  "CMakeFiles/c4_support.dir/Digraph.cpp.o.d"
  "CMakeFiles/c4_support.dir/Format.cpp.o"
  "CMakeFiles/c4_support.dir/Format.cpp.o.d"
  "libc4_support.a"
  "libc4_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
