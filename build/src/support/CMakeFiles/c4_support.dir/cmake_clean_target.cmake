file(REMOVE_RECURSE
  "libc4_support.a"
)
