# Empty compiler generated dependencies file for c4_ssg.
# This may be replaced when dependencies are built.
