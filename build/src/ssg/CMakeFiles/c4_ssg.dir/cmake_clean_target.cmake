file(REMOVE_RECURSE
  "libc4_ssg.a"
)
