file(REMOVE_RECURSE
  "CMakeFiles/c4_ssg.dir/GraphExport.cpp.o"
  "CMakeFiles/c4_ssg.dir/GraphExport.cpp.o.d"
  "CMakeFiles/c4_ssg.dir/SSG.cpp.o"
  "CMakeFiles/c4_ssg.dir/SSG.cpp.o.d"
  "libc4_ssg.a"
  "libc4_ssg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4_ssg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
