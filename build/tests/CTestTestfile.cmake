# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/cond_tests[1]_include.cmake")
include("/root/repo/build/tests/spec_tests[1]_include.cmake")
include("/root/repo/build/tests/history_tests[1]_include.cmake")
include("/root/repo/build/tests/abstract_tests[1]_include.cmake")
include("/root/repo/build/tests/analyzer_tests[1]_include.cmake")
include("/root/repo/build/tests/frontend_tests[1]_include.cmake")
include("/root/repo/build/tests/store_tests[1]_include.cmake")
include("/root/repo/build/tests/ssg_tests[1]_include.cmake")
include("/root/repo/build/tests/unfold_tests[1]_include.cmake")
include("/root/repo/build/tests/bench_apps_tests[1]_include.cmake")
include("/root/repo/build/tests/smt_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/soundness_tests[1]_include.cmake")
include("/root/repo/build/tests/crdt_tests[1]_include.cmake")
include("/root/repo/build/tests/cond_z3_cross_tests[1]_include.cmake")
