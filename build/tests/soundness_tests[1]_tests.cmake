add_test([=[Soundness.SerializableVerdictsHaveNoSmallCounterexamples]=]  /root/repo/build/tests/soundness_tests [==[--gtest_filter=Soundness.SerializableVerdictsHaveNoSmallCounterexamples]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Soundness.SerializableVerdictsHaveNoSmallCounterexamples]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  soundness_tests_TESTS Soundness.SerializableVerdictsHaveNoSmallCounterexamples)
