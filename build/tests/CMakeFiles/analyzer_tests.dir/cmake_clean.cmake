file(REMOVE_RECURSE
  "CMakeFiles/analyzer_tests.dir/AnalyzerTests.cpp.o"
  "CMakeFiles/analyzer_tests.dir/AnalyzerTests.cpp.o.d"
  "analyzer_tests"
  "analyzer_tests.pdb"
  "analyzer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
