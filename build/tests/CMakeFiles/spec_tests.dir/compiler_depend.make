# Empty compiler generated dependencies file for spec_tests.
# This may be replaced when dependencies are built.
