file(REMOVE_RECURSE
  "CMakeFiles/spec_tests.dir/SpecTests.cpp.o"
  "CMakeFiles/spec_tests.dir/SpecTests.cpp.o.d"
  "spec_tests"
  "spec_tests.pdb"
  "spec_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
