# Empty dependencies file for smt_tests.
# This may be replaced when dependencies are built.
