# Empty compiler generated dependencies file for bench_apps_tests.
# This may be replaced when dependencies are built.
