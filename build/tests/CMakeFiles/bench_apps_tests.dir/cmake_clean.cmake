file(REMOVE_RECURSE
  "CMakeFiles/bench_apps_tests.dir/BenchAppsTests.cpp.o"
  "CMakeFiles/bench_apps_tests.dir/BenchAppsTests.cpp.o.d"
  "bench_apps_tests"
  "bench_apps_tests.pdb"
  "bench_apps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
