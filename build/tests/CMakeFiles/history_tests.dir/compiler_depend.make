# Empty compiler generated dependencies file for history_tests.
# This may be replaced when dependencies are built.
