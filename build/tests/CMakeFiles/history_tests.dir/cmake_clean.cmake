file(REMOVE_RECURSE
  "CMakeFiles/history_tests.dir/HistoryTests.cpp.o"
  "CMakeFiles/history_tests.dir/HistoryTests.cpp.o.d"
  "history_tests"
  "history_tests.pdb"
  "history_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
