# Empty compiler generated dependencies file for soundness_tests.
# This may be replaced when dependencies are built.
