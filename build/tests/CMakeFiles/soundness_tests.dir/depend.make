# Empty dependencies file for soundness_tests.
# This may be replaced when dependencies are built.
