file(REMOVE_RECURSE
  "CMakeFiles/soundness_tests.dir/SoundnessTests.cpp.o"
  "CMakeFiles/soundness_tests.dir/SoundnessTests.cpp.o.d"
  "soundness_tests"
  "soundness_tests.pdb"
  "soundness_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soundness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
