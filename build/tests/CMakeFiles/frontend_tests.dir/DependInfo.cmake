
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/FrontendTests.cpp" "tests/CMakeFiles/frontend_tests.dir/FrontendTests.cpp.o" "gcc" "tests/CMakeFiles/frontend_tests.dir/FrontendTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abstract/CMakeFiles/c4_abstract.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/c4_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/c4_history.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/c4_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/c4_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
