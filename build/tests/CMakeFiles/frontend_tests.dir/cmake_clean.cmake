file(REMOVE_RECURSE
  "CMakeFiles/frontend_tests.dir/FrontendTests.cpp.o"
  "CMakeFiles/frontend_tests.dir/FrontendTests.cpp.o.d"
  "frontend_tests"
  "frontend_tests.pdb"
  "frontend_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
