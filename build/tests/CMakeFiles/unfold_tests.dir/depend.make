# Empty dependencies file for unfold_tests.
# This may be replaced when dependencies are built.
