file(REMOVE_RECURSE
  "CMakeFiles/unfold_tests.dir/UnfoldTests.cpp.o"
  "CMakeFiles/unfold_tests.dir/UnfoldTests.cpp.o.d"
  "unfold_tests"
  "unfold_tests.pdb"
  "unfold_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unfold_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
