# Empty compiler generated dependencies file for cond_tests.
# This may be replaced when dependencies are built.
