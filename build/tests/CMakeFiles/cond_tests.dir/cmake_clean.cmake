file(REMOVE_RECURSE
  "CMakeFiles/cond_tests.dir/CondTests.cpp.o"
  "CMakeFiles/cond_tests.dir/CondTests.cpp.o.d"
  "cond_tests"
  "cond_tests.pdb"
  "cond_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cond_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
