# Empty dependencies file for ssg_tests.
# This may be replaced when dependencies are built.
