file(REMOVE_RECURSE
  "CMakeFiles/ssg_tests.dir/SSGTests.cpp.o"
  "CMakeFiles/ssg_tests.dir/SSGTests.cpp.o.d"
  "ssg_tests"
  "ssg_tests.pdb"
  "ssg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
