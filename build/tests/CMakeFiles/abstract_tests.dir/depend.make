# Empty dependencies file for abstract_tests.
# This may be replaced when dependencies are built.
