file(REMOVE_RECURSE
  "CMakeFiles/abstract_tests.dir/AbstractTests.cpp.o"
  "CMakeFiles/abstract_tests.dir/AbstractTests.cpp.o.d"
  "abstract_tests"
  "abstract_tests.pdb"
  "abstract_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstract_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
