file(REMOVE_RECURSE
  "CMakeFiles/cond_z3_cross_tests.dir/CondZ3CrossTests.cpp.o"
  "CMakeFiles/cond_z3_cross_tests.dir/CondZ3CrossTests.cpp.o.d"
  "cond_z3_cross_tests"
  "cond_z3_cross_tests.pdb"
  "cond_z3_cross_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cond_z3_cross_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
