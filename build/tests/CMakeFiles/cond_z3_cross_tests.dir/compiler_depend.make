# Empty compiler generated dependencies file for cond_z3_cross_tests.
# This may be replaced when dependencies are built.
