# Empty dependencies file for crdt_tests.
# This may be replaced when dependencies are built.
