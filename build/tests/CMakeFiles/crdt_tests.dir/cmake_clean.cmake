file(REMOVE_RECURSE
  "CMakeFiles/crdt_tests.dir/CrdtTests.cpp.o"
  "CMakeFiles/crdt_tests.dir/CrdtTests.cpp.o.d"
  "crdt_tests"
  "crdt_tests.pdb"
  "crdt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crdt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
