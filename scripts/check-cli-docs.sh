#!/usr/bin/env bash
# Doc-consistency check: the flag inventory in docs/cli.md must match the
# usage strings of the built binaries, in both directions.
#
#   scripts/check-cli-docs.sh [BUILD_DIR]
#
# BUILD_DIR defaults to ./build. Exits 1 listing any drift:
#   - a flag a binary accepts but docs/cli.md does not document
#   - a flag docs/cli.md documents but no binary accepts
#
# Parsing contract (stated in docs/cli.md): every documented flag's table
# row starts with "| `--name".
set -u

BUILD_DIR="${1:-build}"
ANALYZE="$BUILD_DIR/tools/c4-analyze"
SERVE="$BUILD_DIR/tools/c4-serve"
DOC="docs/cli.md"

for f in "$ANALYZE" "$SERVE" "$DOC"; do
  if [ ! -e "$f" ]; then
    echo "check-cli-docs: missing $f (build first, run from the repo root)" >&2
    exit 1
  fi
done

# Usage strings go to stderr with exit 2. c4-analyze prints usage when run
# with no arguments; c4-serve with no arguments would start serving stdin,
# so an unknown flag elicits its usage instead.
usage_flags() {
  "$@" 2>&1 >/dev/null | grep -oE -- '--[a-z][a-z-]*' | sort -u
}

BIN_FLAGS="$( { usage_flags "$ANALYZE"; usage_flags "$SERVE" --definitely-unknown-flag; } | sort -u )"
DOC_FLAGS="$(grep -E '^\| `--' "$DOC" | grep -oE -- '--[a-z][a-z-]*' | sort -u)"

if [ -z "$BIN_FLAGS" ]; then
  echo "check-cli-docs: could not extract any flags from the binaries' usage strings" >&2
  exit 1
fi

UNDOCUMENTED="$(comm -23 <(printf '%s\n' "$BIN_FLAGS") <(printf '%s\n' "$DOC_FLAGS"))"
STALE="$(comm -13 <(printf '%s\n' "$BIN_FLAGS") <(printf '%s\n' "$DOC_FLAGS"))"

STATUS=0
if [ -n "$UNDOCUMENTED" ]; then
  echo "check-cli-docs: flags accepted by a binary but not documented in $DOC:" >&2
  printf '  %s\n' $UNDOCUMENTED >&2
  STATUS=1
fi
if [ -n "$STALE" ]; then
  echo "check-cli-docs: flags documented in $DOC but accepted by no binary:" >&2
  printf '  %s\n' $STALE >&2
  STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
  echo "check-cli-docs: OK ($(printf '%s\n' "$BIN_FLAGS" | wc -l | tr -d ' ') flags in sync)"
fi
exit "$STATUS"
