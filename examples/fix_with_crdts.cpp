//===- examples/fix_with_crdts.cpp - Repairing bugs with better types -----===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constructive counterpart of the paper's bug classes: many harmful
/// violations are read-modify-write on high-level data (class 2 of §9.5) —
/// the fix is choosing a data type whose updates commute. This example
/// contrasts the Tetris high-score pattern on a plain register (the
/// analyzer reports the lost-update violation) with the same feature on a
/// monotonic max-register (the analyzer *proves* it serializable for any
/// number of sessions), and likewise a tally on a counter.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"

#include <cstdio>

using namespace c4;

static void run(const char *Label, const char *Source,
                bool WithFilters = false) {
  CompileResult Compiled = compileC4L(Source);
  if (!Compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", Compiled.Error.c_str());
    return;
  }
  AnalyzerOptions Options;
  Options.DisplayFilter = WithFilters;
  AnalysisResult R = analyze(*Compiled.Program->History, Options);
  std::printf("=== %s ===\n%s\n", Label,
              reportStr(*Compiled.Program->History, R).c_str());
}

int main() {
  // The buggy pattern: read the high score, compare, write back. Two
  // players can interleave and one score is lost.
  run("high score, read-modify-write on a register (buggy)", R"(
container register Best;
txn saveScore(s) {
  let hi = Best.get();
  if (hi < s) { Best.put(s); }
}
txn showBest() {
  let b = Best.get();
  return b;
}
)");

  // The fix: a monotonic max-register. put merges by maximum, so updates
  // commute and a smaller put is absorbed by a larger one — the analyzer
  // proves serializability outright.
  run("high score on a max-register (proved correct)", R"(
container maxreg Best;
txn saveScore(s) { Best.put(s); }
txn showBest() {
  let b = Best.get();
  return b;
}
)");

  // Same story for tallies: incrementing a register loses updates ...
  run("tally via get/put on a map (buggy)", R"(
container map Votes;
txn vote(n) {
  let v = Votes.get("total");
  Votes.put("total", n);
}
txn results() {
  let v = Votes.get("total");
  return v;
}
)");

  // ... while a counter's increments commute. The remaining read-vs-read
  // "violation" concerns only what the UI displays, which the §9.1
  // display-code filter recognizes.
  run("tally on a counter (display filter on: nothing to report)", R"(
container counter Votes;
txn vote() { Votes.inc(1); }
txn results() {
  let v = Votes.read();
  display(v);
}
)",
      /*WithFilters=*/true);
  return 0;
}
