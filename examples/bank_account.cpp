//===- examples/bank_account.cpp - Static analysis meets simulation -------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bank account on a causally-consistent store: `withdraw` checks the
/// balance and then writes the new one — the textbook read-modify-write
/// race. The static analysis reports the violation; then we *run* the
/// program on the causal store simulator with two replicas and actually
/// produce the double spend, which the dynamic analyzer (§9.5) confirms on
/// that execution — but only when the timing cooperates.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"
#include "store/DynamicAnalyzer.h"
#include "store/Interpreter.h"

#include <cstdio>

using namespace c4;

int main() {
  const char *Source = R"(
container map Accounts;
txn deposit(acct, newBalance) { Accounts.put(acct, newBalance); }
txn withdraw(acct, amount, rest) {
  let bal = Accounts.get(acct);
  if (bal >= 100) { Accounts.put(acct, rest); }
}
txn balance(acct) {
  let b = Accounts.get(acct);
  return b;
}
)";
  CompileResult Compiled = compileC4L(Source);
  if (!Compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", Compiled.Error.c_str());
    return 1;
  }
  CompiledProgram &P = *Compiled.Program;

  std::printf("--- static analysis ---\n");
  AnalysisResult R = analyze(*P.History);
  std::fputs(reportStr(*P.History, R).c_str(), stdout);

  std::printf("\n--- executing the double spend on the simulator ---\n");
  CausalStore Store(*P.Sch, /*NumReplicas=*/2);
  ProgramRunner Runner(P, Store);
  unsigned Alice = Store.openSession(0); // replica 0
  unsigned Bob = Store.openSession(1);   // replica 1
  std::string Error;

  // Deposit 100, replicate everywhere.
  Runner.runTxn(Alice, "deposit", {1, 100}, Error);
  Store.deliverAll();

  // Two concurrent withdrawals of 100 on different replicas: both see
  // balance 100, both succeed.
  Runner.runTxn(Alice, "withdraw", {1, 100, 0}, Error);
  Runner.runTxn(Bob, "withdraw", {1, 100, 0}, Error);
  Store.deliverAll();
  Runner.runTxn(Alice, "balance", {1}, Error);

  const History &H = Store.history();
  for (unsigned T = 0; T != H.numTransactions(); ++T) {
    std::printf("  txn %u (session %u):", T, H.txn(T).Session);
    for (unsigned E : H.txn(T).Events)
      std::printf(" %s", H.eventStr(E).c_str());
    std::printf("\n");
  }
  std::printf("Both withdrawals read balance 100 and succeeded: 200 "
              "withdrawn from a 100 account.\n");

  DynamicReport Dyn = analyzeDynamic(H, Store.schedule());
  std::printf("dynamic analyzer on this execution: %s\n",
              Dyn.violationFound() ? "violation detected"
                                   : "no violation (missed)");
  std::printf("serializable (ground truth): %s\n",
              isSerializable(H) ? "yes" : "no");

  // The same workload with immediate replication: the dynamic analyzer
  // sees nothing — only the static analysis covers all timings.
  CausalStore Store2(*P.Sch, 2);
  ProgramRunner Runner2(P, Store2);
  unsigned A2 = Store2.openSession(0), B2 = Store2.openSession(1);
  Runner2.runTxn(A2, "deposit", {1, 100}, Error);
  Store2.deliverAll();
  Runner2.runTxn(A2, "withdraw", {1, 100, 0}, Error);
  Store2.deliverAll();
  Runner2.runTxn(B2, "withdraw", {1, 100, 0}, Error);
  Store2.deliverAll();
  DynamicReport Dyn2 = analyzeDynamic(Store2.history(), Store2.schedule());
  std::printf("\nwith lucky timing the dynamic analyzer reports: %s\n",
              Dyn2.violationFound() ? "violation" : "nothing");
  return 0;
}
