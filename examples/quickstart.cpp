//===- examples/quickstart.cpp - 5-minute tour of the C4 API --------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a small C4L program, run the analysis, inspect the
/// result. This is the Figure 1 program of the paper — a put and a get on a
/// replicated map — which is not serializable under causal consistency.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"

#include <cstdio>

using namespace c4;

int main() {
  // 1. A client program of a causally-consistent store, in C4L.
  const char *Source = R"(
container map M;
txn P(x, y) { M.put(x, y); }
txn G(z)    { let v = M.get(z); return v; }
)";

  // 2. The front end produces the abstract history (paper §5): abstract
  //    events per syntactic operation, inferred invariants, control flow.
  CompileResult Compiled = compileC4L(Source);
  if (!Compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", Compiled.Error.c_str());
    return 1;
  }
  CompiledProgram &P = *Compiled.Program;
  std::printf("compiled: %u transactions, %u store events\n",
              P.History->numTxns(), P.History->numStoreEvents());

  // 3. The back end runs the staged pipeline: the fast SSG analysis (§6),
  //    then SMT-checked unfoldings (§7) with counter-example extraction.
  AnalysisResult R = analyze(*P.History);
  std::fputs(reportStr(*P.History, R).c_str(), stdout);

  // 4. Violations carry concrete counter-examples: a non-serializable
  //    execution of the program, rendered session by session.
  if (!R.Violations.empty() && R.Violations.front().CE)
    std::printf("\nThis is the classic 'long fork': each session misses "
                "the other's write.\n");

  // 5. Fixing the program: if every access within a session uses the same
  //    key (a session-local constant), the program becomes serializable —
  //    the paper's Figure 7.
  const char *Fixed = R"(
container map M;
session u;
txn P(y) { M.put(u, y); }
txn G()  { let v = M.get(u); return v; }
)";
  CompileResult Compiled2 = compileC4L(Fixed);
  AnalysisResult R2 = analyze(*Compiled2.Program->History);
  std::printf("\nwith session-local keys: %s",
              reportStr(*Compiled2.Program->History, R2).c_str());
  return 0;
}
