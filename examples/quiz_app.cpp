//===- examples/quiz_app.cpp - Precision features on the quiz app ---------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §8 quiz application (Figures 10 and 12): transactions update
/// and read two fields of a quiz row, and new questions are created with
/// fresh row identities. Demonstrates how inferred argument equalities and
/// fresh-unique-value reasoning eliminate false alarms — and what the
/// analysis reports when each feature is disabled.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"

#include <cstdio>

using namespace c4;

static void analyzeWith(const CompiledProgram &P, const char *Label,
                        AnalysisFeatures Features) {
  AnalyzerOptions O;
  O.Features = Features;
  AnalysisResult R = analyze(*P.History, O);
  std::printf("=== %s ===\n%s\n", Label, reportStr(*P.History, R).c_str());
}

int main() {
  const char *Source = R"(
container table Quiz;
session current;   // the quiz a session is working on

txn addQuestion(q) {
  let x = Quiz.add_row();          // guaranteed-fresh row identity
  Quiz.set(x, "question", q);
}
txn updateQuestion(q, a) {
  Quiz.set(current, "question", q);
  Quiz.set(current, "answer", a);  // same row: inferred equality
}
txn getQuestion() {
  let q = Quiz.get(current, "question");
  let a = Quiz.get(current, "answer");
  return q;
}
)";
  CompileResult Compiled = compileC4L(Source);
  if (!Compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", Compiled.Error.c_str());
    return 1;
  }
  const CompiledProgram &P = *Compiled.Program;

  // Full precision: every candidate cycle is refuted (absorption between
  // same-row writes, fresh-identity reasoning for add_row).
  analyzeWith(P, "all features (paper configuration)",
              AnalysisFeatures::all());

  // Figure 10: without the argument-equality constraints, the answer field
  // may be attributed to a different row and a false alarm appears.
  AnalysisFeatures NoConstraints;
  NoConstraints.Constraints = false;
  analyzeWith(P, "without constraints (Fig. 10 false alarm)", NoConstraints);

  // Figure 12: without fresh-unique-value reasoning, a row can be updated
  // "before" its creation and a false alarm appears.
  AnalysisFeatures NoUnique;
  NoUnique.UniqueValues = false;
  analyzeWith(P, "without unique values (Fig. 12 false alarm)", NoUnique);

  // Without absorption, overwritten writes keep their anti-dependencies
  // (the Fig. 3 mechanism) and alarms reappear.
  AnalysisFeatures NoAbsorption;
  NoAbsorption.Absorption = false;
  analyzeWith(P, "without absorption", NoAbsorption);
  return 0;
}
