//===- examples/twitter_followers.cpp - Control flow & asymmetry ----------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §8 Twitter-like example (Figure 11): addFollower guards an
/// add behind an existence check. With control-flow constraints and
/// asymmetric commutativity the program is serializable; disabling either
/// feature reintroduces a false alarm. The example also shows a genuine bug
/// of this pattern: registering the same username from two sessions.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"

#include <cstdio>

using namespace c4;

int main() {
  const char *Source = R"(
container table Users;
session me;
global handle;    // the (fixed) user under discussion

txn createUser() { Users.set(handle, "name", 1); }
txn addFollower(n) {
  let e = Users.contains(handle);
  if (e) { Users.add(handle, "flwrs", n); }
}
)";
  CompileResult Compiled = compileC4L(Source);
  if (!Compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n", Compiled.Error.c_str());
    return 1;
  }
  const CompiledProgram &P = *Compiled.Program;

  AnalysisResult Full = analyze(*P.History);
  std::printf("=== all features ===\n%s\n",
              reportStr(*P.History, Full).c_str());

  AnalyzerOptions NoCF;
  NoCF.Features.ControlFlow = false;
  AnalysisResult RNoCF = analyze(*P.History, NoCF);
  std::printf("=== without control flow (Fig. 11c false alarm) ===\n%s\n",
              reportStr(*P.History, RNoCF).c_str());

  AnalyzerOptions NoAsym;
  NoAsym.Features.AsymmetricAntiDeps = false;
  AnalysisResult RNoAsym = analyze(*P.History, NoAsym);
  std::printf("=== without asymmetric commutativity ===\n%s\n",
              reportStr(*P.History, RNoAsym).c_str());

  // A genuinely buggy variant: guarded creation used for uniqueness. Two
  // sessions can both observe "not taken" and both register — the class (1)
  // harmful violations of §9.5.
  const char *Buggy = R"(
container table Users;
session me;
txn register(name) {
  let taken = Users.contains(name);
  if (!taken) { Users.set(name, "owner", me); }
}
txn whois(name) {
  let o = Users.get(name, "owner");
  return o;
}
)";
  CompileResult Compiled2 = compileC4L(Buggy);
  AnalysisResult R2 = analyze(*Compiled2.Program->History);
  std::printf("=== uniqueness-by-check (a real bug) ===\n%s",
              reportStr(*Compiled2.Program->History, R2).c_str());
  return 0;
}
