//===- tools/c4-analyze.cpp - C4 command line driver ----------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end: compiles a .c4l file and runs the full analysis.
///
///   c4-analyze [options] <file.c4l>
///     --no-filter          disable the display-code and atomic-set filters
///     --no-commutativity   ablation switches (paper §9.3)
///     --no-absorption
///     --no-constraints
///     --no-control-flow
///     --no-asymmetric
///     --no-unique
///     --max-k <n>          session bound cap (default 3, must be >= 1)
///     --threads <n>        worker threads for the bounded check
///                          (0 = hardware concurrency; results are
///                          independent of the thread count)
///     --no-cache           disable the commutativity/absorption
///                          memoization oracle (A/B measurements)
///     --no-prefilter       disable the relational-domain prefilter in
///                          front of the SMT stage (escape hatch and A/B
///                          baseline; verdicts are identical either way)
///     --check-prefilter    cross-check every domain-proven verdict
///                          against Z3 (slow; exit 4 on any disagreement)
///     --rlimit <n>         per-query solver budget in Z3 resource units —
///                          deterministic across machines, unlike wall time
///                          (0 = wall-clock backstop only)
///     --rlimit-cap <n>     ceiling of the geometric retry escalation
///     --retries <n>        max re-solves after an unknown (each retry
///                          multiplies the rlimit by the escalation factor)
///     --smt-timeout-ms <n> wall-clock backstop per solver call
///     --deadline-ms <n>    global analysis deadline; on expiry the run
///                          winds down cooperatively and reports a partial
///                          but sound verdict (0 = none)
///     --dfs-budget <n>     step budget of the layout-viability pre-filter
///     --trace <file>       write a JSONL query trace: one record per
///                          solver query (stage, unfolding, rlimit spent,
///                          retries, outcome, wall time)
///     --cache-dir <dir>    persistent cross-run cache (created if needed):
///                          whole-history verdicts keyed by a content
///                          fingerprint, plus portable oracle sat-verdicts.
///                          A warm hit replays the cold run's result and
///                          statistics byte-for-byte; any miss or corrupt
///                          entry silently falls back to a cold analysis
///     --incremental-cache <dir>
///                          like --cache-dir, plus the incremental layers:
///                          per-unfolding NoCycle records keyed by
///                          transaction content digests and a canonicalized
///                          constraint cache, so after an edit only the
///                          queries touching the edited transaction are
///                          re-solved (verdicts are identical either way)
///     --no-incremental     keep the verdict/oracle layers of
///                          --incremental-cache but disable the incremental
///                          record and constraint layers (A/B baseline)
///     --seed <n>           RNG seed for --simulate (default 0xC4C4)
///     --simulate <n>       additionally execute n randomized workloads on
///                          the causal-store simulator and report how often
///                          the dynamic analyzer observes a violation
///     --stats-json         print the analysis result and statistics as a
///                          single JSON object on stdout (machine-readable
///                          perf trajectories for the bench suite)
///     --dot                print the general static serialization graph in
///                          Graphviz format and exit
///     --no-passes          skip the reduction pass pipeline (the abstract
///                          history is analyzed exactly as compiled); the
///                          verdict is unchanged, only cost may differ
///     --lint               print lint warnings (docs/passes.md) for the
///                          program as written and exit without analyzing
///     --lint-json          like --lint, but as a JSON object
///     --werror             treat lint warnings as errors
///
/// Exit codes: 0 clean, 1 serializability violation reported (takes
/// precedence over --werror), 2 usage or compile error, 3 lint warnings
/// present under --werror (and no violation), 4 prefilter disagreement
/// detected under --check-prefilter (takes precedence over everything —
/// it indicates an analyzer bug, not a property of the input).
///
//===----------------------------------------------------------------------===//

#include "analysis/Pipeline.h"
#include "frontend/Frontend.h"
#include "passes/PassManager.h"
#include "ssg/GraphExport.h"
#include "store/DynamicAnalyzer.h"
#include "store/Interpreter.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace c4;

static int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--no-filter] [--no-commutativity] "
               "[--no-absorption] [--no-constraints] [--no-control-flow] "
               "[--no-asymmetric] [--no-unique] [--no-cache] "
               "[--no-prefilter] [--check-prefilter] [--max-k N] "
               "[--threads N] [--rlimit N] [--rlimit-cap N] [--retries N] "
               "[--smt-timeout-ms N] [--deadline-ms N] [--dfs-budget N] "
               "[--trace FILE] [--cache-dir DIR] [--incremental-cache DIR] "
               "[--no-incremental] [--seed N] [--simulate N] "
               "[--stats-json] [--dot] [--no-passes] [--lint] [--lint-json] "
               "[--werror] <file.c4l>\n",
               Prog);
  return 2;
}

/// Parses a non-negative decimal integer argument. Rejects trailing junk,
/// signs and out-of-range values ("--max-k banana" or "--max-k -2" must be
/// an error, not silently 0).
static bool parseCount(const char *Flag, const char *Text, unsigned &Out) {
  if (!Text || !*Text || *Text == '-' || *Text == '+') {
    std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text ? Text : "");
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long V = std::strtoul(Text, &End, 10);
  if (errno == ERANGE || *End != '\0' || V > 0xFFFFFFFFul) {
    std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

int main(int Argc, char **Argv) {
  AnalyzerOptions Options;
  Options.DisplayFilter = true;
  Options.UseAtomicSets = true;
  unsigned SimulateTrials = 0;
  unsigned Seed = 0xC4C4;
  bool DumpDot = false;
  bool StatsJson = false;
  bool NoPasses = false, LintText = false, LintJson = false, Werror = false;
  const char *Path = nullptr;
  const char *TracePath = nullptr;
  const char *CacheDir = nullptr;
  bool IncrementalCache = false;
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--no-filter")) {
      Options.DisplayFilter = false;
      Options.UseAtomicSets = false;
    } else if (!std::strcmp(Arg, "--no-commutativity")) {
      Options.Features.Commutativity = false;
    } else if (!std::strcmp(Arg, "--no-absorption")) {
      Options.Features.Absorption = false;
    } else if (!std::strcmp(Arg, "--no-constraints")) {
      Options.Features.Constraints = false;
    } else if (!std::strcmp(Arg, "--no-control-flow")) {
      Options.Features.ControlFlow = false;
    } else if (!std::strcmp(Arg, "--no-asymmetric")) {
      Options.Features.AsymmetricAntiDeps = false;
    } else if (!std::strcmp(Arg, "--no-unique")) {
      Options.Features.UniqueValues = false;
    } else if (!std::strcmp(Arg, "--no-cache")) {
      Options.UseOracle = false;
    } else if (!std::strcmp(Arg, "--no-prefilter")) {
      Options.UsePrefilter = false;
    } else if (!std::strcmp(Arg, "--check-prefilter")) {
      Options.CheckPrefilter = true;
    } else if (!std::strcmp(Arg, "--max-k")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], Options.MaxK))
        return usage(Argv[0]);
      if (Options.MaxK < 1) {
        std::fprintf(stderr, "error: --max-k must be at least 1\n");
        return usage(Argv[0]);
      }
    } else if (!std::strcmp(Arg, "--threads")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], Options.NumThreads))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--rlimit")) {
      unsigned V = 0;
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], V))
        return usage(Argv[0]);
      Options.Budget.Rlimit = V;
    } else if (!std::strcmp(Arg, "--rlimit-cap")) {
      unsigned V = 0;
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], V))
        return usage(Argv[0]);
      Options.Budget.RlimitCap = V;
    } else if (!std::strcmp(Arg, "--retries")) {
      if (I + 1 == Argc ||
          !parseCount(Arg, Argv[++I], Options.Budget.MaxRetries))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--smt-timeout-ms")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], Options.Budget.WallMs))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--deadline-ms")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], Options.DeadlineMs))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--dfs-budget")) {
      if (I + 1 == Argc ||
          !parseCount(Arg, Argv[++I], Options.LayoutDfsBudget))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--trace")) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      TracePath = Argv[++I];
    } else if (!std::strcmp(Arg, "--cache-dir")) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      CacheDir = Argv[++I];
    } else if (!std::strcmp(Arg, "--incremental-cache")) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      CacheDir = Argv[++I];
      IncrementalCache = true;
    } else if (!std::strcmp(Arg, "--no-incremental")) {
      Options.UseIncremental = false;
    } else if (!std::strcmp(Arg, "--seed")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], Seed))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--simulate")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], SimulateTrials))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--stats-json")) {
      StatsJson = true;
    } else if (!std::strcmp(Arg, "--dot")) {
      DumpDot = true;
    } else if (!std::strcmp(Arg, "--no-passes")) {
      NoPasses = true;
    } else if (!std::strcmp(Arg, "--lint")) {
      LintText = true;
    } else if (!std::strcmp(Arg, "--lint-json")) {
      LintJson = true;
    } else if (!std::strcmp(Arg, "--werror")) {
      Werror = true;
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else if (!Path) {
      Path = Arg;
    } else {
      return usage(Argv[0]);
    }
  }
  if (!Path)
    return usage(Argv[0]);

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  CompileResult Compiled = compileC4L(Buffer.str());
  if (!Compiled.ok()) {
    std::fprintf(stderr, "%s: error: %s\n", Path, Compiled.Error.c_str());
    return 2;
  }
  CompiledProgram &P = *Compiled.Program;

  // The pass pipeline: sound history reduction plus the lint layer. Lint
  // modes analyze the program exactly as written (no reduction), so every
  // diagnostic points at source the user can see.
  PassOptions PassOpts;
  PassOpts.Reduce = !NoPasses && !LintText && !LintJson;
  PassOpts.UniqueValues = Options.Features.UniqueValues;
  PassOpts.Lint = LintText || LintJson || Werror;
  PassResult Passes;
  if (PassOpts.Reduce || PassOpts.Lint) {
    std::string Source = Buffer.str();
    Passes = runPasses(P, PassOpts, &Source);
    if (!Passes.Ok) {
      std::fprintf(stderr, "%s: error: %s\n", Path, Passes.Error.c_str());
      return 2;
    }
  }
  if (LintText || LintJson) {
    std::fputs((LintJson ? renderLintJson(Passes.Lints, Path)
                         : renderLintText(Passes.Lints, Path))
                   .c_str(),
               stdout);
    return Werror && !Passes.Lints.empty() ? 3 : 0;
  }
  if (Werror && !Passes.Lints.empty())
    std::fputs(renderLintText(Passes.Lints, Path).c_str(), stderr);

  Options.AtomicSets = P.AtomicSets;

  if (DumpDot) {
    SSG G(*P.History, Options.Features);
    G.analyze();
    std::fputs(ssgToDot(*P.History, G.graph()).c_str(), stdout);
    return 0;
  }

  if (!StatsJson)
    std::printf("%s: %u transactions, %u events (front end %.3fs)\n", Path,
                P.History->numTxns(), P.History->numStoreEvents(),
                P.FrontendSeconds);
  QueryTrace Trace;
  if (TracePath)
    Options.Trace = &Trace;

  // The persistent cross-run cache (verdicts + oracle sat-snapshots). A
  // directory that cannot be created degrades to a plain cold run.
  std::unique_ptr<AnalysisCache> Cache;
  if (CacheDir) {
    Cache = std::make_unique<AnalysisCache>(CacheDir, IncrementalCache);
    if (!Cache->enabled())
      std::fprintf(stderr,
                   "warning: cannot open cache directory %s; running cold\n",
                   CacheDir);
  }
  PipelineResult PR =
      analyzeCached(*P.History, Options, *P.Registry, Cache.get());
  AnalysisResult &R = PR.R;
  if (Cache && Cache->enabled())
    // Cache observability goes to stderr: stdout carries only the result,
    // so warm output stays comparable to cold output.
    std::fprintf(stderr, "cache: verdict %s (fingerprint %s)\n",
                 PR.CacheHit ? "hit" : "miss", PR.Fingerprint.c_str());
  if (TracePath && !Trace.writeFile(TracePath)) {
    std::fprintf(stderr, "error: cannot write trace to %s\n", TracePath);
    return 2;
  }
  if (StatsJson) {
    StatsJsonFields F;
    F.File = Path;
    F.Transactions = P.History->numTxns();
    F.Events = P.History->numStoreEvents();
    F.FrontendSeconds = P.FrontendSeconds;
    F.LexSeconds = P.LexSeconds;
    F.ParseSeconds = P.ParseSeconds;
    F.BuildSeconds = P.BuildSeconds;
    F.PassSeconds = Passes.Stats.Seconds;
    F.PassIterations = Passes.Stats.Iterations;
    F.EventsBefore = Passes.Stats.EventsBefore;
    F.EventsAfter = Passes.Stats.EventsAfter;
    F.DeadWrites = Passes.Stats.DeadWrites;
    F.PrunedBranches = Passes.Stats.PrunedBranches;
    F.ConstProps = Passes.Stats.ConstProps;
    F.FreshPromotions = Passes.Stats.FreshPromotions;
    F.LintWarnings = Passes.Lints.size();
    std::fputs(renderStatsJson(F, R).c_str(), stdout);
  } else {
    std::fputs(reportStr(*P.History, R).c_str(), stdout);
  }

  if (SimulateTrials) {
    // Cross-check dynamically: randomized workloads on the causal-store
    // simulator, analyzed by the dynamic DSG analyzer (§9.5 baseline).
    Rng Rand(Seed);
    unsigned Detected = 0;
    for (unsigned Trial = 0; Trial != SimulateTrials; ++Trial) {
      CausalStore Store(*P.Sch, 2);
      ProgramRunner Runner(P, Store);
      unsigned Sessions[2] = {Store.openSession(0), Store.openSession(1)};
      for (unsigned S : Sessions)
        for (const std::string &Name : P.AST->SessionConsts)
          Runner.setSessionConst(S, Name, 40 + S);
      std::string Error;
      for (int Round = 0; Round != 6; ++Round) {
        const TxnDecl &T = P.AST->Txns[Rand.below(P.AST->Txns.size())];
        std::vector<int64_t> Args;
        for (size_t A = 0; A != T.Params.size(); ++A)
          Args.push_back(Rand.range(1, 2));
        Runner.runTxn(Sessions[Rand.below(2)], T.Name, Args, Error);
        while (Rand.chance(1, 2) && Store.deliverRandom(Rand)) {
        }
      }
      Store.deliverAll();
      if (analyzeDynamic(Store.history(), Store.schedule())
              .violationFound())
        ++Detected;
    }
    std::printf("simulation: %u of %u randomized executions exhibited a "
                "DSG cycle dynamically (seed 0x%X)\n",
                Detected, SimulateTrials, Seed);
  }
  if (R.PrefilterDisagreements > 0) {
    std::fprintf(stderr,
                 "error: %u prefilter disagreement(s) with Z3 — the "
                 "relational domain is unsound on this input\n",
                 R.PrefilterDisagreements);
    return 4;
  }
  if (!R.Violations.empty())
    return 1;
  return Werror && !Passes.Lints.empty() ? 3 : 0;
}
