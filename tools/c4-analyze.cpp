//===- tools/c4-analyze.cpp - C4 command line driver ----------------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end: compiles a .c4l file and runs the full analysis.
///
///   c4-analyze [options] <file.c4l>
///     --no-filter          disable the display-code and atomic-set filters
///     --no-commutativity   ablation switches (paper §9.3)
///     --no-absorption
///     --no-constraints
///     --no-control-flow
///     --no-asymmetric
///     --no-unique
///     --max-k <n>          session bound cap (default 3)
///     --simulate <n>       additionally execute n randomized workloads on
///                          the causal-store simulator and report how often
///                          the dynamic analyzer observes a violation
///     --dot                print the general static serialization graph in
///                          Graphviz format and exit
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "frontend/Frontend.h"
#include "ssg/GraphExport.h"
#include "store/DynamicAnalyzer.h"
#include "store/Interpreter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace c4;

static int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--no-filter] [--no-commutativity] "
               "[--no-absorption] [--no-constraints] [--no-control-flow] "
               "[--no-asymmetric] [--no-unique] [--max-k N] "
               "[--simulate N] <file.c4l>\n",
               Prog);
  return 2;
}

int main(int Argc, char **Argv) {
  AnalyzerOptions Options;
  Options.DisplayFilter = true;
  Options.UseAtomicSets = true;
  unsigned SimulateTrials = 0;
  bool DumpDot = false;
  const char *Path = nullptr;
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--no-filter")) {
      Options.DisplayFilter = false;
      Options.UseAtomicSets = false;
    } else if (!std::strcmp(Arg, "--no-commutativity")) {
      Options.Features.Commutativity = false;
    } else if (!std::strcmp(Arg, "--no-absorption")) {
      Options.Features.Absorption = false;
    } else if (!std::strcmp(Arg, "--no-constraints")) {
      Options.Features.Constraints = false;
    } else if (!std::strcmp(Arg, "--no-control-flow")) {
      Options.Features.ControlFlow = false;
    } else if (!std::strcmp(Arg, "--no-asymmetric")) {
      Options.Features.AsymmetricAntiDeps = false;
    } else if (!std::strcmp(Arg, "--no-unique")) {
      Options.Features.UniqueValues = false;
    } else if (!std::strcmp(Arg, "--max-k") && I + 1 != Argc) {
      Options.MaxK = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (!std::strcmp(Arg, "--simulate") && I + 1 != Argc) {
      SimulateTrials = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (!std::strcmp(Arg, "--dot")) {
      DumpDot = true;
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else if (!Path) {
      Path = Arg;
    } else {
      return usage(Argv[0]);
    }
  }
  if (!Path)
    return usage(Argv[0]);

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  CompileResult Compiled = compileC4L(Buffer.str());
  if (!Compiled.ok()) {
    std::fprintf(stderr, "%s: error: %s\n", Path, Compiled.Error.c_str());
    return 2;
  }
  CompiledProgram &P = *Compiled.Program;
  Options.AtomicSets = P.AtomicSets;

  if (DumpDot) {
    SSG G(*P.History, Options.Features);
    G.analyze();
    std::fputs(ssgToDot(*P.History, G.graph()).c_str(), stdout);
    return 0;
  }

  std::printf("%s: %u transactions, %u events (front end %.3fs)\n", Path,
              P.History->numTxns(), P.History->numStoreEvents(),
              P.FrontendSeconds);
  AnalysisResult R = analyze(*P.History, Options);
  std::fputs(reportStr(*P.History, R).c_str(), stdout);

  if (SimulateTrials) {
    // Cross-check dynamically: randomized workloads on the causal-store
    // simulator, analyzed by the dynamic DSG analyzer (§9.5 baseline).
    Rng Rand(0xC4C4);
    unsigned Detected = 0;
    for (unsigned Trial = 0; Trial != SimulateTrials; ++Trial) {
      CausalStore Store(*P.Sch, 2);
      ProgramRunner Runner(P, Store);
      unsigned Sessions[2] = {Store.openSession(0), Store.openSession(1)};
      for (unsigned S : Sessions)
        for (const std::string &Name : P.AST->SessionConsts)
          Runner.setSessionConst(S, Name, 40 + S);
      std::string Error;
      for (int Round = 0; Round != 6; ++Round) {
        const TxnDecl &T = P.AST->Txns[Rand.below(P.AST->Txns.size())];
        std::vector<int64_t> Args;
        for (size_t A = 0; A != T.Params.size(); ++A)
          Args.push_back(Rand.range(1, 2));
        Runner.runTxn(Sessions[Rand.below(2)], T.Name, Args, Error);
        while (Rand.chance(1, 2) && Store.deliverRandom(Rand)) {
        }
      }
      Store.deliverAll();
      if (analyzeDynamic(Store.history(), Store.schedule())
              .violationFound())
        ++Detected;
    }
    std::printf("simulation: %u of %u randomized executions exhibited a "
                "DSG cycle dynamically\n",
                Detected, SimulateTrials);
  }
  return R.Violations.empty() ? 0 : 1;
}
