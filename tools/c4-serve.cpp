//===- tools/c4-serve.cpp - Persistent C4 analysis service ----------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived analysis service: accepts JSON-lines requests on stdin (the
/// default) or a Unix-domain socket, analyzes them concurrently on a worker
/// pool, and replies with one JSON line per request carrying the same
/// verdict/stats object `c4-analyze --stats-json` prints. Amortizes across
/// requests everything a one-shot CLI run pays per invocation: process
/// start-up, Z3 context construction (one env per worker thread, reused),
/// oracle warm-up and — with --cache-dir — the entire back end for
/// previously seen (program, options) pairs.
///
///   c4-serve [options]
///     --workers <n>     request-level worker threads (0 = hardware
///                       concurrency; default 0)
///     --socket <path>   listen on a Unix-domain socket instead of stdin
///     --cache-dir <dir> persistent cross-run cache shared by all workers
///                       (same layout and semantics as c4-analyze
///                       --cache-dir)
///
/// Request object (one per line):
///   {"id": ..., "program": "<c4l source>"}        inline source, or
///   {"id": ..., "file": "<path.c4l>"}             a file the server reads
/// plus optional per-request analyzer options mirroring the c4-analyze
/// flags (docs/cli.md): "max_k", "threads", "rlimit", "rlimit_cap",
/// "retries", "smt_timeout_ms", "deadline_ms", "dfs_budget", and booleans
/// "no_passes", "no_filter", "no_cache", "no_commutativity",
/// "no_absorption", "no_constraints", "no_control_flow", "no_asymmetric",
/// "no_unique". Unlike the CLI, "threads" defaults to 1: request-level
/// parallelism comes from --workers, and multiplying the two oversubscribes.
///
/// Control requests: {"op": "ping"}, {"op": "stats"} (cache counters),
/// {"op": "shutdown"} (drain outstanding work, reply, exit).
///
/// Reply (one line, completion order — match replies to requests by the
/// echoed "id", not by position):
///   {"id": ..., "ok": true, "cache_hit": <bool>, "stats": {...}}
///   {"id": ..., "ok": false, "error": "<message>"}
///
/// Exit code: 0 on clean shutdown (stdin EOF or the shutdown op), 2 on
/// usage or setup errors. Per-request failures are replies, not exits.
///
//===----------------------------------------------------------------------===//

#include "analysis/Pipeline.h"
#include "frontend/Frontend.h"
#include "passes/PassManager.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace c4;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--socket PATH] [--cache-dir DIR]\n",
               Prog);
  return 2;
}

bool parseCount(const char *Flag, const char *Text, unsigned &Out) {
  if (!Text || !*Text || *Text == '-' || *Text == '+') {
    std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text ? Text : "");
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long V = std::strtoul(Text, &End, 10);
  if (errno == ERANGE || *End != '\0' || V > 0xFFFFFFFFul) {
    std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

/// Renders a request id for echoing. Only strings and integers are
/// preserved; anything else (or a missing id) echoes as null.
std::string renderId(const JsonValue *Id) {
  if (Id) {
    if (const std::string *S = Id->asString())
      return "\"" + jsonEscape(*S) + "\"";
    if (std::optional<int64_t> I = Id->asInt())
      return std::to_string(*I);
  }
  return "null";
}

std::string errorReply(const std::string &Id, const std::string &Msg) {
  return "{\"id\": " + Id + ", \"ok\": false, \"error\": \"" +
         jsonEscape(Msg) + "\"}";
}

/// Collapses the multi-line stats object into one line (values never
/// contain raw newlines — strings are escaped by the renderer).
std::string oneLine(std::string S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    if (C != '\n')
      Out += C;
  return Out;
}

/// Reads one unsigned option field into \p Out; returns false (with an
/// error message) when present but malformed.
bool readCount(const JsonValue &Req, const char *Key, unsigned &Out,
               std::string &Err) {
  const JsonValue *V = Req.get(Key);
  if (!V)
    return true;
  std::optional<int64_t> I = V->asInt();
  if (!I || *I < 0 || *I > 0xFFFFFFFFll) {
    Err = std::string(Key) + " expects a non-negative integer";
    return false;
  }
  Out = static_cast<unsigned>(*I);
  return true;
}

/// Reads a boolean option field (same contract as readCount).
bool readFlag(const JsonValue &Req, const char *Key, bool &Out,
              std::string &Err) {
  const JsonValue *V = Req.get(Key);
  if (!V)
    return true;
  std::optional<bool> B = V->asBool();
  if (!B) {
    Err = std::string(Key) + " expects a boolean";
    return false;
  }
  Out = *B;
  return true;
}

/// One Z3 environment per pool thread, reused across the requests the
/// thread serves (context construction costs more than a typical small
/// solve). Sound because AnalyzerOptions::ReuseEnv is only handed to the
/// run executing on this thread, and per-query name generations isolate
/// queries from each other.
thread_local std::unique_ptr<Z3Env> WorkerEnv;

/// Handles one request line end to end; returns the reply line.
std::string handleRequest(const std::string &Line, AnalysisCache *Cache) {
  std::string Err;
  std::optional<JsonValue> Req = parseJson(Line, Err);
  if (!Req)
    return errorReply("null", Err);
  std::string Id = renderId(Req->get("id"));
  if (!Req->asObject())
    return errorReply(Id, "request must be a JSON object");

  // Control operations.
  if (const JsonValue *Op = Req->get("op")) {
    const std::string *Name = Op->asString();
    if (!Name)
      return errorReply(Id, "op expects a string");
    if (*Name == "ping")
      return "{\"id\": " + Id + ", \"ok\": true, \"pong\": true}";
    if (*Name == "stats") {
      DiskCacheStats D = Cache ? Cache->diskStats() : DiskCacheStats{};
      char Buf[256];
      std::snprintf(
          Buf, sizeof(Buf),
          "{\"id\": %s, \"ok\": true, \"cache_enabled\": %s, "
          "\"verdict_hits\": %llu, \"verdict_misses\": %llu, "
          "\"disk_hits\": %llu, \"disk_misses\": %llu, "
          "\"disk_corrupt\": %llu, \"disk_stores\": %llu, "
          "\"oracle_entries\": %zu}",
          Id.c_str(), Cache && Cache->enabled() ? "true" : "false",
          static_cast<unsigned long long>(Cache ? Cache->verdictHits() : 0),
          static_cast<unsigned long long>(Cache ? Cache->verdictMisses() : 0),
          static_cast<unsigned long long>(D.Hits),
          static_cast<unsigned long long>(D.Misses),
          static_cast<unsigned long long>(D.Corrupt),
          static_cast<unsigned long long>(D.Stores),
          Cache ? Cache->oracleEntries() : size_t(0));
      return Buf;
    }
    // "shutdown" is interpreted by the serving loops; reaching here means
    // an unknown op.
    return errorReply(Id, "unknown op '" + *Name + "'");
  }

  // Source acquisition: inline program or server-side file.
  std::string Source, Label;
  if (const JsonValue *Prog = Req->get("program")) {
    const std::string *S = Prog->asString();
    if (!S)
      return errorReply(Id, "program expects a string");
    Source = *S;
    Label = "<inline>";
  } else if (const JsonValue *File = Req->get("file")) {
    const std::string *S = File->asString();
    if (!S)
      return errorReply(Id, "file expects a string");
    std::ifstream In(*S);
    if (!In)
      return errorReply(Id, "cannot open " + *S);
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
    Label = *S;
  } else {
    return errorReply(Id, "request needs \"program\" or \"file\"");
  }

  // Per-request options (CLI-equivalent defaults, except threads = 1).
  AnalyzerOptions Options;
  Options.DisplayFilter = true;
  Options.UseAtomicSets = true;
  Options.NumThreads = 1;
  bool NoFilter = false, NoPasses = false, NoCache = false;
  bool NoCom = false, NoAbs = false, NoCons = false, NoCf = false,
       NoAsym = false, NoUnique = false;
  unsigned Rlimit = 0, RlimitCap = 0;
  bool HaveRlimit = Req->get("rlimit") != nullptr;
  bool HaveRlimitCap = Req->get("rlimit_cap") != nullptr;
  if (!readCount(*Req, "max_k", Options.MaxK, Err) ||
      !readCount(*Req, "threads", Options.NumThreads, Err) ||
      !readCount(*Req, "rlimit", Rlimit, Err) ||
      !readCount(*Req, "rlimit_cap", RlimitCap, Err) ||
      !readCount(*Req, "retries", Options.Budget.MaxRetries, Err) ||
      !readCount(*Req, "smt_timeout_ms", Options.Budget.WallMs, Err) ||
      !readCount(*Req, "deadline_ms", Options.DeadlineMs, Err) ||
      !readCount(*Req, "dfs_budget", Options.LayoutDfsBudget, Err) ||
      !readFlag(*Req, "no_filter", NoFilter, Err) ||
      !readFlag(*Req, "no_passes", NoPasses, Err) ||
      !readFlag(*Req, "no_cache", NoCache, Err) ||
      !readFlag(*Req, "no_commutativity", NoCom, Err) ||
      !readFlag(*Req, "no_absorption", NoAbs, Err) ||
      !readFlag(*Req, "no_constraints", NoCons, Err) ||
      !readFlag(*Req, "no_control_flow", NoCf, Err) ||
      !readFlag(*Req, "no_asymmetric", NoAsym, Err) ||
      !readFlag(*Req, "no_unique", NoUnique, Err))
    return errorReply(Id, Err);
  if (Options.MaxK < 1)
    return errorReply(Id, "max_k must be at least 1");
  if (HaveRlimit)
    Options.Budget.Rlimit = Rlimit;
  if (HaveRlimitCap)
    Options.Budget.RlimitCap = RlimitCap;
  if (NoFilter) {
    Options.DisplayFilter = false;
    Options.UseAtomicSets = false;
  }
  Options.UseOracle = !NoCache;
  Options.Features.Commutativity = !NoCom;
  Options.Features.Absorption = !NoAbs;
  Options.Features.Constraints = !NoCons;
  Options.Features.ControlFlow = !NoCf;
  Options.Features.AsymmetricAntiDeps = !NoAsym;
  Options.Features.UniqueValues = !NoUnique;

  CompileResult Compiled = compileC4L(Source);
  if (!Compiled.ok())
    return errorReply(Id, Compiled.Error);
  CompiledProgram &P = *Compiled.Program;

  PassOptions PassOpts;
  PassOpts.Reduce = !NoPasses;
  PassOpts.UniqueValues = Options.Features.UniqueValues;
  PassOpts.Lint = false; // lint is a CLI concern; see c4-analyze --lint
  PassResult Passes;
  if (PassOpts.Reduce) {
    Passes = runPasses(P, PassOpts, &Source);
    if (!Passes.Ok)
      return errorReply(Id, Passes.Error);
  }
  Options.AtomicSets = P.AtomicSets;

  if (!WorkerEnv)
    WorkerEnv = std::make_unique<Z3Env>();
  Options.ReuseEnv = WorkerEnv.get();

  PipelineResult PR =
      analyzeCached(*P.History, Options, *P.Registry, Cache);

  StatsJsonFields F;
  F.File = Label;
  F.Transactions = P.History->numTxns();
  F.Events = P.History->numStoreEvents();
  F.FrontendSeconds = P.FrontendSeconds;
  F.LexSeconds = P.LexSeconds;
  F.ParseSeconds = P.ParseSeconds;
  F.BuildSeconds = P.BuildSeconds;
  F.PassSeconds = Passes.Stats.Seconds;
  F.PassIterations = Passes.Stats.Iterations;
  F.EventsBefore = Passes.Stats.EventsBefore;
  F.EventsAfter = Passes.Stats.EventsAfter;
  F.DeadWrites = Passes.Stats.DeadWrites;
  F.PrunedBranches = Passes.Stats.PrunedBranches;
  F.ConstProps = Passes.Stats.ConstProps;
  F.FreshPromotions = Passes.Stats.FreshPromotions;
  F.LintWarnings = Passes.Lints.size();

  return "{\"id\": " + Id + ", \"ok\": true, \"cache_hit\": " +
         (PR.CacheHit ? "true" : "false") +
         ", \"stats\": " + oneLine(renderStatsJson(F, PR.R)) + "}";
}

/// True when \p Line is a shutdown control request. Parsed cheaply and
/// answered by the serving loop itself (the pool drains first).
bool isShutdown(const std::string &Line, std::string &IdOut) {
  std::string Err;
  std::optional<JsonValue> Req = parseJson(Line, Err);
  if (!Req)
    return false;
  const JsonValue *Op = Req->get("op");
  const std::string *Name = Op ? Op->asString() : nullptr;
  if (!Name || *Name != "shutdown")
    return false;
  IdOut = renderId(Req->get("id"));
  return true;
}

/// Serves the stdin/stdout JSON-lines session. Returns the exit code.
int serveStdin(unsigned Workers, AnalysisCache *Cache) {
  std::mutex OutMu;
  bool SawShutdown = false;
  {
    ThreadPool Pool(Workers);
    std::string Line;
    while (std::getline(std::cin, Line)) {
      if (Line.empty())
        continue;
      std::string ShutdownId;
      if (isShutdown(Line, ShutdownId)) {
        SawShutdown = true;
        break;
      }
      Pool.submit([Line, Cache, &OutMu] {
        std::string Reply = handleRequest(Line, Cache);
        std::lock_guard<std::mutex> Lock(OutMu);
        std::fputs(Reply.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      });
    }
    // ~ThreadPool drains the queue: every accepted request is answered.
  }
  if (SawShutdown)
    std::printf("{\"id\": null, \"ok\": true, \"shutdown\": true}\n");
  return 0;
}

/// One accepted socket connection: reads request lines, submits them to
/// the shared pool, writes replies in completion order. The connection
/// closes only after its outstanding requests are answered.
struct Connection {
  int Fd;
  std::mutex WriteMu;
  std::mutex PendingMu;
  std::condition_variable PendingCv;
  unsigned Pending = 0;

  void writeLine(const std::string &Reply) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    std::string Out = Reply + "\n";
    size_t Off = 0;
    while (Off < Out.size()) {
      ssize_t N = ::write(Fd, Out.data() + Off, Out.size() - Off);
      if (N <= 0)
        return; // peer went away; drop the reply
      Off += static_cast<size_t>(N);
    }
  }

  void taskDone() {
    std::lock_guard<std::mutex> Lock(PendingMu);
    --Pending;
    PendingCv.notify_all();
  }

  void waitDrained() {
    std::unique_lock<std::mutex> Lock(PendingMu);
    PendingCv.wait(Lock, [this] { return Pending == 0; });
  }
};

std::atomic<bool> StopRequested{false};
std::atomic<int> ListenFdForStop{-1};

void serveConnection(std::shared_ptr<Connection> Conn, ThreadPool &Pool,
                     AnalysisCache *Cache) {
  FILE *In = ::fdopen(::dup(Conn->Fd), "r");
  if (In) {
    char *LinePtr = nullptr;
    size_t Cap = 0;
    ssize_t Len;
    while ((Len = ::getline(&LinePtr, &Cap, In)) > 0) {
      std::string Line(LinePtr, static_cast<size_t>(Len));
      while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
        Line.pop_back();
      if (Line.empty())
        continue;
      std::string ShutdownId;
      if (isShutdown(Line, ShutdownId)) {
        Conn->waitDrained();
        Conn->writeLine("{\"id\": " + ShutdownId +
                        ", \"ok\": true, \"shutdown\": true}");
        StopRequested.store(true);
        // Unblock the accept loop.
        int LFd = ListenFdForStop.exchange(-1);
        if (LFd >= 0)
          ::shutdown(LFd, SHUT_RDWR);
        break;
      }
      {
        std::lock_guard<std::mutex> Lock(Conn->PendingMu);
        ++Conn->Pending;
      }
      Pool.submit([Line, Conn, Cache] {
        Conn->writeLine(handleRequest(Line, Cache));
        Conn->taskDone();
      });
    }
    std::free(LinePtr);
    std::fclose(In);
  }
  Conn->waitDrained();
  ::close(Conn->Fd);
}

int serveSocket(const std::string &Path, unsigned Workers,
                AnalysisCache *Cache) {
  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return 2;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long\n");
    ::close(ListenFd);
    return 2;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str()); // stale socket from a previous run
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    std::fprintf(stderr, "error: cannot listen on %s: %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(ListenFd);
    return 2;
  }
  ListenFdForStop.store(ListenFd);
  std::fprintf(stderr, "c4-serve: listening on %s\n", Path.c_str());

  std::vector<std::thread> ConnThreads;
  {
    ThreadPool Pool(Workers);
    while (!StopRequested.load()) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR && !StopRequested.load())
          continue;
        break; // closed by shutdown, or a hard error
      }
      auto Conn = std::make_shared<Connection>();
      Conn->Fd = Fd;
      ConnThreads.emplace_back(
          [Conn, &Pool, Cache] { serveConnection(Conn, Pool, Cache); });
    }
    for (std::thread &T : ConnThreads)
      T.join();
    // ~ThreadPool drains any remaining queued requests.
  }
  ::close(ListenFd);
  ::unlink(Path.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Workers = 0;
  const char *SocketPath = nullptr;
  const char *CacheDir = nullptr;
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--workers")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], Workers))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--socket")) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      SocketPath = Argv[++I];
    } else if (!std::strcmp(Arg, "--cache-dir")) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      CacheDir = Argv[++I];
    } else {
      return usage(Argv[0]);
    }
  }

  std::unique_ptr<AnalysisCache> Cache;
  if (CacheDir) {
    Cache = std::make_unique<AnalysisCache>(CacheDir);
    if (!Cache->enabled())
      std::fprintf(stderr,
                   "warning: cannot open cache directory %s; serving cold\n",
                   CacheDir);
  }

  if (SocketPath)
    return serveSocket(SocketPath, Workers, Cache.get());
  return serveStdin(Workers, Cache.get());
}
