//===- tools/c4-serve.cpp - Persistent C4 analysis service ----------------===//
//
// Part of the C4 serializability analyzer. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived analysis service: accepts JSON-lines requests on stdin (the
/// default), a Unix-domain socket, or a TCP socket; analyzes them
/// concurrently on a worker pool; and replies with one JSON line per
/// request carrying the same verdict/stats object `c4-analyze --stats-json`
/// prints. Amortizes across requests everything a one-shot CLI run pays per
/// invocation: process start-up, Z3 context construction (one env per
/// worker thread, reused), oracle warm-up and — with --cache-dir — the
/// entire back end for previously seen (program, options) pairs.
///
///   c4-serve [options]
///     --workers <n>          request-level worker threads (0 = hardware
///                            concurrency; default 0)
///     --socket <path>        listen on a Unix-domain socket
///     --tcp <host:port>      listen on a TCP socket (port 0 picks a free
///                            port; the chosen address is printed to
///                            stderr as "listening on HOST:PORT")
///     --max-inflight <n>     admission control: maximum analysis requests
///                            admitted concurrently; excess requests get
///                            an immediate backpressure reply instead of
///                            queueing unboundedly (0 = unlimited;
///                            default 256)
///     --drain-timeout-ms <n> graceful-drain budget after SIGTERM/SIGINT
///                            or the shutdown op (0 = wait forever;
///                            default 30000)
///     --cache-dir <dir>      persistent cross-run cache shared by all
///                            workers (same layout and semantics as
///                            c4-analyze --cache-dir)
///     --incremental-cache <dir>
///                            like --cache-dir, plus the incremental
///                            layers: per-unfolding NoCycle records and
///                            the canonicalized constraint cache (same
///                            semantics as c4-analyze --incremental-cache)
///
/// The socket modes run a single poll(2) event-loop thread (one fd per
/// connection, no thread-per-connection) in front of the worker pool, so
/// thousands of mostly-idle connections cost one poll set, not thousands
/// of threads. Identical concurrent requests are collapsed by the cache's
/// single-flight layer: one backend run per analysis fingerprint.
///
/// Request object (one per line):
///   {"id": ..., "program": "<c4l source>"}        inline source, or
///   {"id": ..., "file": "<path.c4l>"}             a file the server reads
/// plus optional per-request analyzer options mirroring the c4-analyze
/// flags (docs/cli.md): "max_k", "threads", "rlimit", "rlimit_cap",
/// "retries", "smt_timeout_ms", "deadline_ms", "dfs_budget", and booleans
/// "no_passes", "no_filter", "no_cache", "no_commutativity",
/// "no_absorption", "no_constraints", "no_control_flow", "no_asymmetric",
/// "no_unique", "no_prefilter", "no_incremental". Unlike the CLI, "threads"
/// defaults to 1:
/// request-level
/// parallelism comes from --workers, and multiplying the two oversubscribes.
///
/// Control requests: {"op": "ping"}, {"op": "stats"} (cache + serving
/// counters), {"op": "shutdown"} (drain outstanding work, reply, exit).
///
/// Reply (one line, completion order — match replies to requests by the
/// echoed "id", not by position):
///   {"id": ..., "ok": true, "cache_hit": <bool>, "stats": {...}}
///   {"id": ..., "ok": false, "error": "<message>"}
/// plus, under overload, the backpressure shape
///   {"id": ..., "ok": false, "error": "overloaded: ...", "overloaded": true}
///
/// Shutdown and drain: SIGTERM/SIGINT (socket modes) or the shutdown op
/// stop accepting new connections, finish and deliver all in-flight work,
/// flush the cache, and exit 0. Past --drain-timeout-ms the drain turns
/// firm: every live request's deadline is tripped (support/Deadline), the
/// analyses wind down to partial-but-sound verdicts, and undeliverable
/// replies are counted as dropped. SIGPIPE is ignored process-wide — a
/// client disconnecting mid-reply costs that client its reply (counted in
/// "replies_dropped"), never the process.
///
/// Exit code: 0 on clean shutdown (stdin EOF, the shutdown op, or a drain
/// signal), 2 on usage or setup errors. Per-request failures are replies,
/// not exits.
///
//===----------------------------------------------------------------------===//

#include "analysis/Pipeline.h"
#include "frontend/Frontend.h"
#include "passes/PassManager.h"
#include "support/Deadline.h"
#include "support/EventLoop.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace c4;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--socket PATH] [--tcp HOST:PORT]\n"
               "          [--max-inflight N] [--drain-timeout-ms MS] "
               "[--cache-dir DIR] [--incremental-cache DIR]\n",
               Prog);
  return 2;
}

bool parseCount(const char *Flag, const char *Text, unsigned &Out) {
  if (!Text || !*Text || *Text == '-' || *Text == '+') {
    std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text ? Text : "");
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long V = std::strtoul(Text, &End, 10);
  if (errno == ERANGE || *End != '\0' || V > 0xFFFFFFFFul) {
    std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

/// Serving-layer counters surfaced by the stats op next to the cache
/// counters. Atomics: the loop thread writes, stdin-mode pool workers read.
struct ServerCounters {
  std::atomic<uint64_t> Connections{0};    ///< connections accepted
  std::atomic<uint64_t> DroppedReplies{0}; ///< replies a dead peer never got
  std::atomic<uint64_t> Overloads{0};      ///< backpressure rejections
};

/// Renders a request id for echoing. Only strings and integers are
/// preserved; anything else (or a missing id) echoes as null.
std::string renderId(const JsonValue *Id) {
  if (Id) {
    if (const std::string *S = Id->asString())
      return "\"" + jsonEscape(*S) + "\"";
    if (std::optional<int64_t> I = Id->asInt())
      return std::to_string(*I);
  }
  return "null";
}

std::string errorReply(const std::string &Id, const std::string &Msg) {
  return "{\"id\": " + Id + ", \"ok\": false, \"error\": \"" +
         jsonEscape(Msg) + "\"}";
}

/// The admission-control backpressure reply: the request was not queued;
/// the client should back off and retry.
std::string overloadReply(const std::string &Id, uint64_t InFlight) {
  return "{\"id\": " + Id + ", \"ok\": false, \"error\": \"overloaded: " +
         std::to_string(InFlight) +
         " requests in flight, retry later\", \"overloaded\": true}";
}

/// Collapses the multi-line stats object into one line (values never
/// contain raw newlines — strings are escaped by the renderer).
std::string oneLine(std::string S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    if (C != '\n')
      Out += C;
  return Out;
}

/// Reads one unsigned option field into \p Out; returns false (with an
/// error message) when present but malformed.
bool readCount(const JsonValue &Req, const char *Key, unsigned &Out,
               std::string &Err) {
  const JsonValue *V = Req.get(Key);
  if (!V)
    return true;
  std::optional<int64_t> I = V->asInt();
  if (!I || *I < 0 || *I > 0xFFFFFFFFll) {
    Err = std::string(Key) + " expects a non-negative integer";
    return false;
  }
  Out = static_cast<unsigned>(*I);
  return true;
}

/// Reads a boolean option field (same contract as readCount).
bool readFlag(const JsonValue &Req, const char *Key, bool &Out,
              std::string &Err) {
  const JsonValue *V = Req.get(Key);
  if (!V)
    return true;
  std::optional<bool> B = V->asBool();
  if (!B) {
    Err = std::string(Key) + " expects a boolean";
    return false;
  }
  Out = *B;
  return true;
}

std::string statsReply(const std::string &Id, AnalysisCache *Cache,
                       const ServerCounters &SC) {
  DiskCacheStats D = Cache ? Cache->diskStats() : DiskCacheStats{};
  bool Incr = Cache && Cache->incremental();
  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"id\": %s, \"ok\": true, \"cache_enabled\": %s, "
      "\"verdict_hits\": %llu, \"verdict_misses\": %llu, "
      "\"backend_runs\": %llu, \"single_flight_waits\": %llu, "
      "\"disk_hits\": %llu, \"disk_misses\": %llu, "
      "\"disk_corrupt\": %llu, \"disk_stores\": %llu, "
      "\"oracle_entries\": %zu, "
      "\"incremental_enabled\": %s, \"incremental_records\": %zu, "
      "\"incremental_txns\": %zu, \"constraint_proofs\": %zu, "
      "\"connections\": %llu, \"replies_dropped\": %llu, "
      "\"overload_rejects\": %llu}",
      Id.c_str(), Cache && Cache->enabled() ? "true" : "false",
      static_cast<unsigned long long>(Cache ? Cache->verdictHits() : 0),
      static_cast<unsigned long long>(Cache ? Cache->verdictMisses() : 0),
      static_cast<unsigned long long>(Cache ? Cache->backendRuns() : 0),
      static_cast<unsigned long long>(Cache ? Cache->flightWaits() : 0),
      static_cast<unsigned long long>(D.Hits),
      static_cast<unsigned long long>(D.Misses),
      static_cast<unsigned long long>(D.Corrupt),
      static_cast<unsigned long long>(D.Stores),
      Cache ? Cache->oracleEntries() : size_t(0), Incr ? "true" : "false",
      Incr ? Cache->incrRecords() : size_t(0),
      Incr ? Cache->incrTxns() : size_t(0),
      Incr ? Cache->greenProofs() : size_t(0),
      static_cast<unsigned long long>(SC.Connections.load()),
      static_cast<unsigned long long>(SC.DroppedReplies.load()),
      static_cast<unsigned long long>(SC.Overloads.load()));
  return Buf;
}

/// Replies for the cheap control operations (ping / stats / unknown op).
/// Callers intercept "shutdown" before getting here — it needs the serving
/// loop's drain machinery, not a worker.
std::string controlReply(const JsonValue &Req, const std::string &Id,
                         AnalysisCache *Cache, const ServerCounters &SC) {
  const JsonValue *Op = Req.get("op");
  const std::string *Name = Op ? Op->asString() : nullptr;
  if (!Name)
    return errorReply(Id, "op expects a string");
  if (*Name == "ping")
    return "{\"id\": " + Id + ", \"ok\": true, \"pong\": true}";
  if (*Name == "stats")
    return statsReply(Id, Cache, SC);
  return errorReply(Id, "unknown op '" + *Name + "'");
}

/// One Z3 environment per pool thread, reused across the requests the
/// thread serves (context construction costs more than a typical small
/// solve). Sound because AnalyzerOptions::ReuseEnv is only handed to the
/// run executing on this thread, and per-query name generations isolate
/// queries from each other.
thread_local std::unique_ptr<Z3Env> WorkerEnv;

/// Handles one request line end to end; returns the reply line.
/// \p RequestDeadline, when given, is armed from the request's deadline_ms
/// and governs the analysis — the serving loop keeps a handle so graceful
/// drain can trip it (the run then winds down to a partial-but-sound
/// verdict instead of holding up the exit).
std::string handleRequest(const std::string &Line, AnalysisCache *Cache,
                          const ServerCounters &SC,
                          Deadline *RequestDeadline = nullptr) {
  std::string Err;
  std::optional<JsonValue> Req = parseJson(Line, Err);
  if (!Req)
    return errorReply("null", Err);
  std::string Id = renderId(Req->get("id"));
  if (!Req->asObject())
    return errorReply(Id, "request must be a JSON object");

  // Control operations ("shutdown" is interpreted by the serving loops;
  // reaching controlReply with it means it arrived somewhere unexpected
  // and reads as an unknown op — the loops catch it first).
  if (Req->get("op"))
    return controlReply(*Req, Id, Cache, SC);

  // Source acquisition: inline program or server-side file.
  std::string Source, Label;
  if (const JsonValue *Prog = Req->get("program")) {
    const std::string *S = Prog->asString();
    if (!S)
      return errorReply(Id, "program expects a string");
    Source = *S;
    Label = "<inline>";
  } else if (const JsonValue *File = Req->get("file")) {
    const std::string *S = File->asString();
    if (!S)
      return errorReply(Id, "file expects a string");
    std::ifstream In(*S);
    if (!In)
      return errorReply(Id, "cannot open " + *S);
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
    Label = *S;
  } else {
    return errorReply(Id, "request needs \"program\" or \"file\"");
  }

  // Per-request options (CLI-equivalent defaults, except threads = 1).
  AnalyzerOptions Options;
  Options.DisplayFilter = true;
  Options.UseAtomicSets = true;
  Options.NumThreads = 1;
  bool NoFilter = false, NoPasses = false, NoCache = false;
  bool NoCom = false, NoAbs = false, NoCons = false, NoCf = false,
       NoAsym = false, NoUnique = false, NoPrefilter = false,
       NoIncremental = false;
  unsigned Rlimit = 0, RlimitCap = 0;
  bool HaveRlimit = Req->get("rlimit") != nullptr;
  bool HaveRlimitCap = Req->get("rlimit_cap") != nullptr;
  if (!readCount(*Req, "max_k", Options.MaxK, Err) ||
      !readCount(*Req, "threads", Options.NumThreads, Err) ||
      !readCount(*Req, "rlimit", Rlimit, Err) ||
      !readCount(*Req, "rlimit_cap", RlimitCap, Err) ||
      !readCount(*Req, "retries", Options.Budget.MaxRetries, Err) ||
      !readCount(*Req, "smt_timeout_ms", Options.Budget.WallMs, Err) ||
      !readCount(*Req, "deadline_ms", Options.DeadlineMs, Err) ||
      !readCount(*Req, "dfs_budget", Options.LayoutDfsBudget, Err) ||
      !readFlag(*Req, "no_filter", NoFilter, Err) ||
      !readFlag(*Req, "no_passes", NoPasses, Err) ||
      !readFlag(*Req, "no_cache", NoCache, Err) ||
      !readFlag(*Req, "no_commutativity", NoCom, Err) ||
      !readFlag(*Req, "no_absorption", NoAbs, Err) ||
      !readFlag(*Req, "no_constraints", NoCons, Err) ||
      !readFlag(*Req, "no_control_flow", NoCf, Err) ||
      !readFlag(*Req, "no_asymmetric", NoAsym, Err) ||
      !readFlag(*Req, "no_unique", NoUnique, Err) ||
      !readFlag(*Req, "no_prefilter", NoPrefilter, Err) ||
      !readFlag(*Req, "no_incremental", NoIncremental, Err))
    return errorReply(Id, Err);
  if (Options.MaxK < 1)
    return errorReply(Id, "max_k must be at least 1");
  if (HaveRlimit)
    Options.Budget.Rlimit = Rlimit;
  if (HaveRlimitCap)
    Options.Budget.RlimitCap = RlimitCap;
  if (NoFilter) {
    Options.DisplayFilter = false;
    Options.UseAtomicSets = false;
  }
  Options.UseOracle = !NoCache;
  Options.Features.Commutativity = !NoCom;
  Options.Features.Absorption = !NoAbs;
  Options.Features.Constraints = !NoCons;
  Options.Features.ControlFlow = !NoCf;
  Options.Features.AsymmetricAntiDeps = !NoAsym;
  Options.Features.UniqueValues = !NoUnique;
  Options.UsePrefilter = !NoPrefilter;
  Options.UseIncremental = !NoIncremental;

  // Per-request deadline: DeadlineMs still describes the budget (it is part
  // of the verdict fingerprint); the externally owned object lets the
  // serving loop cancel the run during a firm drain.
  if (RequestDeadline) {
    RequestDeadline->armIn(Options.DeadlineMs);
    Options.ExternalDeadline = RequestDeadline;
  }

  CompileResult Compiled = compileC4L(Source);
  if (!Compiled.ok())
    return errorReply(Id, Compiled.Error);
  CompiledProgram &P = *Compiled.Program;

  PassOptions PassOpts;
  PassOpts.Reduce = !NoPasses;
  PassOpts.UniqueValues = Options.Features.UniqueValues;
  PassOpts.Lint = false; // lint is a CLI concern; see c4-analyze --lint
  PassResult Passes;
  if (PassOpts.Reduce) {
    Passes = runPasses(P, PassOpts, &Source);
    if (!Passes.Ok)
      return errorReply(Id, Passes.Error);
  }
  Options.AtomicSets = P.AtomicSets;

  if (!WorkerEnv)
    WorkerEnv = std::make_unique<Z3Env>();
  Options.ReuseEnv = WorkerEnv.get();

  PipelineResult PR =
      analyzeCached(*P.History, Options, *P.Registry, Cache);

  StatsJsonFields F;
  F.File = Label;
  F.Transactions = P.History->numTxns();
  F.Events = P.History->numStoreEvents();
  F.FrontendSeconds = P.FrontendSeconds;
  F.LexSeconds = P.LexSeconds;
  F.ParseSeconds = P.ParseSeconds;
  F.BuildSeconds = P.BuildSeconds;
  F.PassSeconds = Passes.Stats.Seconds;
  F.PassIterations = Passes.Stats.Iterations;
  F.EventsBefore = Passes.Stats.EventsBefore;
  F.EventsAfter = Passes.Stats.EventsAfter;
  F.DeadWrites = Passes.Stats.DeadWrites;
  F.PrunedBranches = Passes.Stats.PrunedBranches;
  F.ConstProps = Passes.Stats.ConstProps;
  F.FreshPromotions = Passes.Stats.FreshPromotions;
  F.LintWarnings = Passes.Lints.size();

  return "{\"id\": " + Id + ", \"ok\": true, \"cache_hit\": " +
         (PR.CacheHit ? "true" : "false") +
         ", \"stats\": " + oneLine(renderStatsJson(F, PR.R)) + "}";
}

/// True when \p Line is a shutdown control request. Parsed cheaply and
/// answered by the serving loop itself (the pool drains first).
bool isShutdown(const std::string &Line, std::string &IdOut) {
  std::string Err;
  std::optional<JsonValue> Req = parseJson(Line, Err);
  if (!Req)
    return false;
  const JsonValue *Op = Req->get("op");
  const std::string *Name = Op ? Op->asString() : nullptr;
  if (!Name || *Name != "shutdown")
    return false;
  IdOut = renderId(Req->get("id"));
  return true;
}

/// Serves the stdin/stdout JSON-lines session. Returns the exit code.
int serveStdin(unsigned Workers, AnalysisCache *Cache,
               ServerCounters &Counters) {
  std::mutex OutMu;
  bool SawShutdown = false;
  {
    ThreadPool Pool(Workers);
    std::string Line;
    while (std::getline(std::cin, Line)) {
      if (Line.empty())
        continue;
      std::string ShutdownId;
      if (isShutdown(Line, ShutdownId)) {
        SawShutdown = true;
        break;
      }
      Pool.submit([Line, Cache, &OutMu, &Counters] {
        std::string Reply = handleRequest(Line, Cache, Counters);
        std::lock_guard<std::mutex> Lock(OutMu);
        std::fputs(Reply.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      });
    }
    // ~ThreadPool drains the queue: every accepted request is answered.
  }
  if (Cache)
    Cache->flush();
  if (SawShutdown)
    std::printf("{\"id\": null, \"ok\": true, \"shutdown\": true}\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// The socket serving tier: poll event loop + worker pool.
//===----------------------------------------------------------------------===//

/// Hostile-client guard: a request line may not exceed this many bytes.
constexpr size_t kMaxLineBytes = 32u << 20;
/// Grace after a firm drain cancels in-flight work: how long the loop keeps
/// delivering the wind-down replies before force-closing.
constexpr unsigned kDrainGraceMs = 2000;

/// Write end of the stop-signal self-pipe. A one-byte write is the only
/// async-signal-safe way to hand SIGTERM to the event loop.
std::atomic<int> StopSignalFd{-1};

extern "C" void onStopSignal(int) {
  int Fd = StopSignalFd.load(std::memory_order_relaxed);
  if (Fd >= 0) {
    char B = 1;
    ssize_t N = ::write(Fd, &B, 1);
    (void)N;
  }
}

/// One client connection's loop-thread state. Replies buffer in WriteBuf
/// (WriteOff marks the sent prefix) and drain as the peer accepts them;
/// a connection with outstanding requests survives read-EOF so completed
/// analyses still reach a half-closed but reading peer.
struct Conn {
  int Fd = -1;
  uint64_t Id = 0;
  std::string ReadBuf;
  std::string WriteBuf;
  size_t WriteOff = 0;
  unsigned Pending = 0; ///< submitted analyses not yet delivered
  bool Eof = false;     ///< peer closed its write side (or poisoned input)
  bool CloseWhenFlushed = false;
  bool ShutdownWanted = false, ShutdownAcked = false;
  std::string ShutdownId;

  size_t unsent() const { return WriteBuf.size() - WriteOff; }
};

class Server {
public:
  Server(unsigned Workers, unsigned MaxInflightArg, unsigned DrainMsArg,
         AnalysisCache *CacheArg, ServerCounters &CountersArg)
      : MaxInflight(MaxInflightArg), DrainTimeoutMs(DrainMsArg),
        Cache(CacheArg), Counters(CountersArg), Pool(Workers) {}

  ~Server() {
    StopSignalFd.store(-1);
    if (SigPipe[0] >= 0)
      ::close(SigPipe[0]);
    if (SigPipe[1] >= 0)
      ::close(SigPipe[1]);
  }

  bool ok() const { return Loop.ok(); }

  bool listenUnix(const std::string &Path) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (Fd < 0) {
      std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
      return false;
    }
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path)) {
      std::fprintf(stderr, "error: socket path too long\n");
      ::close(Fd);
      return false;
    }
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    ::unlink(Path.c_str()); // stale socket from a previous run
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
        ::listen(Fd, 1024) < 0) {
      std::fprintf(stderr, "error: cannot listen on %s: %s\n", Path.c_str(),
                   std::strerror(errno));
      ::close(Fd);
      return false;
    }
    UnixPath = Path;
    ListenFds.push_back(Fd);
    std::fprintf(stderr, "c4-serve: listening on %s\n", Path.c_str());
    return true;
  }

  /// \p Spec is HOST:PORT; port 0 lets the kernel pick (the bound address
  /// is printed, which is how harnesses discover the port).
  bool listenTcp(const std::string &Spec) {
    size_t Colon = Spec.rfind(':');
    if (Colon == std::string::npos) {
      std::fprintf(stderr, "error: --tcp expects HOST:PORT, got '%s'\n",
                   Spec.c_str());
      return false;
    }
    std::string Host = Spec.substr(0, Colon);
    std::string Port = Spec.substr(Colon + 1);
    if (Host.empty())
      Host = "127.0.0.1";

    addrinfo Hints;
    std::memset(&Hints, 0, sizeof(Hints));
    Hints.ai_family = AF_UNSPEC;
    Hints.ai_socktype = SOCK_STREAM;
    Hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
    addrinfo *Res = nullptr;
    int Rc = ::getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Res);
    if (Rc != 0) {
      std::fprintf(stderr, "error: cannot resolve %s: %s\n", Spec.c_str(),
                   ::gai_strerror(Rc));
      return false;
    }
    int Fd = -1;
    for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
      Fd = ::socket(AI->ai_family, AI->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                    AI->ai_protocol);
      if (Fd < 0)
        continue;
      int One = 1;
      ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
      if (::bind(Fd, AI->ai_addr, AI->ai_addrlen) == 0 &&
          ::listen(Fd, 1024) == 0)
        break;
      ::close(Fd);
      Fd = -1;
    }
    ::freeaddrinfo(Res);
    if (Fd < 0) {
      std::fprintf(stderr, "error: cannot listen on %s: %s\n", Spec.c_str(),
                   std::strerror(errno));
      return false;
    }

    sockaddr_storage Bound;
    socklen_t Len = sizeof(Bound);
    char HostBuf[NI_MAXHOST] = "?", PortBuf[NI_MAXSERV] = "?";
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
      ::getnameinfo(reinterpret_cast<sockaddr *>(&Bound), Len, HostBuf,
                    sizeof(HostBuf), PortBuf, sizeof(PortBuf),
                    NI_NUMERICHOST | NI_NUMERICSERV);
    ListenFds.push_back(Fd);
    std::fprintf(stderr, "c4-serve: listening on %s:%s\n", HostBuf, PortBuf);
    return true;
  }

  int run() {
    // Stop-signal plumbing: SIGTERM/SIGINT write one byte; the loop reads
    // it and starts the drain. No SA_RESTART — poll() must wake.
    if (::pipe(SigPipe) == 0) {
      for (int Fd : SigPipe)
        ::fcntl(Fd, F_SETFL, ::fcntl(Fd, F_GETFL) | O_NONBLOCK);
      StopSignalFd.store(SigPipe[1]);
      struct sigaction SA;
      std::memset(&SA, 0, sizeof(SA));
      SA.sa_handler = onStopSignal;
      ::sigemptyset(&SA.sa_mask);
      ::sigaction(SIGTERM, &SA, nullptr);
      ::sigaction(SIGINT, &SA, nullptr);
      Loop.add(SigPipe[0], EventLoop::Read, [this](unsigned) {
        char Buf[64];
        while (::read(SigPipe[0], Buf, sizeof(Buf)) > 0) {
        }
        startDrain("signal");
      });
    }
    for (int Fd : ListenFds)
      Loop.add(Fd, EventLoop::Read,
               [this, Fd](unsigned) { acceptReady(Fd); });

    bool CancelIssued = false;
    Deadline FlushDeadline;
    for (;;) {
      int Timeout = -1;
      if (Draining) {
        if (drained())
          break;
        if (!DrainDeadline.expired()) {
          unsigned Left = DrainDeadline.remainingMs(3600u * 1000);
          Timeout = static_cast<int>(Left ? Left : 1);
        } else {
          if (!CancelIssued) {
            // Firm drain: trip every live request's deadline; analyses
            // wind down cooperatively to partial-but-sound verdicts and
            // their replies still get delivered below.
            for (auto &[Seq, DL] : LiveDeadlines)
              DL->cancel();
            CancelIssued = true;
            FlushDeadline.armIn(kDrainGraceMs);
            std::fprintf(stderr,
                         "c4-serve: drain timeout, cancelling %zu in-flight "
                         "request(s)\n",
                         LiveDeadlines.size());
          }
          if (FlushDeadline.expired())
            break; // whatever is still undelivered is dropped below
          Timeout = 100;
        }
      }
      if (!Loop.runOnce(Timeout))
        break;
    }

    // Close every remaining connection. On the clean path all buffers are
    // flushed and nothing is in flight, so nothing is counted as dropped.
    while (!Conns.empty())
      closeConn(*Conns.begin()->second, /*CountDrops=*/true);
    Counters.DroppedReplies += InFlight; // deliveries that will never run
    for (int Fd : ListenFds)
      ::close(Fd);
    if (!UnixPath.empty())
      ::unlink(UnixPath.c_str());
    if (Cache)
      Cache->flush();
    return 0;
    // ~Server then ~ThreadPool: any still-running cancelled task finishes
    // its wind-down; its posted delivery is inert (the loop has stopped).
  }

private:
  void startDrain(const char *Why) {
    if (Draining)
      return;
    Draining = true;
    DrainDeadline.armIn(DrainTimeoutMs);
    for (int Fd : ListenFds) {
      Loop.remove(Fd);
      ::close(Fd);
    }
    ListenFds.clear();
    if (!UnixPath.empty()) {
      ::unlink(UnixPath.c_str());
      UnixPath.clear();
    }
    std::fprintf(stderr,
                 "c4-serve: draining (%s): %llu in flight, %zu connection(s)\n",
                 Why, static_cast<unsigned long long>(InFlight), Conns.size());
  }

  /// Drain completion: all admitted work delivered and every reply byte
  /// flushed. Idle connections do not block the drain — they are closed on
  /// exit.
  bool drained() const {
    if (InFlight)
      return false;
    for (const auto &[Id, C] : Conns)
      if (C->unsent())
        return false;
    return true;
  }

  void acceptReady(int ListenFd) {
    for (;;) {
      int Fd = ::accept4(ListenFd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (Fd < 0) {
        if (errno == EINTR)
          continue;
        return; // EAGAIN or a transient error; poll re-arms
      }
      int One = 1; // harmless ENOPROTOOPT on AF_UNIX
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      ++Counters.Connections;
      uint64_t Id = ++NextConnId;
      auto C = std::make_unique<Conn>();
      C->Fd = Fd;
      C->Id = Id;
      Conns.emplace(Id, std::move(C));
      Loop.add(Fd, EventLoop::Read,
               [this, Id](unsigned Ev) { connEvent(Id, Ev); });
    }
  }

  void connEvent(uint64_t Id, unsigned Ev) {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      return;
    Conn &C = *It->second;
    if (Ev & EventLoop::Error) {
      closeConn(C, /*CountDrops=*/true);
      return;
    }
    if (Ev & EventLoop::Write)
      if (!flushConn(C))
        return;
    if (Ev & EventLoop::Read)
      readable(C);
  }

  void readable(Conn &C) {
    char Buf[65536];
    for (;;) {
      ssize_t N = ::read(C.Fd, Buf, sizeof(Buf));
      if (N > 0) {
        C.ReadBuf.append(Buf, static_cast<size_t>(N));
        continue;
      }
      if (N == 0) {
        C.Eof = true;
        break;
      }
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      closeConn(C, /*CountDrops=*/true);
      return;
    }

    if (C.ReadBuf.size() > kMaxLineBytes &&
        C.ReadBuf.find('\n') == std::string::npos) {
      // Hostile or broken client: an unbounded un-terminated line. Answer
      // once and stop reading; the connection closes after the flush.
      enqueue(C, errorReply("null", "request line exceeds " +
                                        std::to_string(kMaxLineBytes) +
                                        " bytes"));
      C.Eof = true;
      C.CloseWhenFlushed = true;
      flushConn(C);
      return;
    }

    size_t Start = 0;
    for (;;) {
      size_t Nl = C.ReadBuf.find('\n', Start);
      if (Nl == std::string::npos)
        break;
      std::string Line = C.ReadBuf.substr(Start, Nl - Start);
      Start = Nl + 1;
      while (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        processLine(C, Line);
    }
    C.ReadBuf.erase(0, Start);
    // A half-written trailing line at EOF is discarded: there is no peer
    // left to answer and no newline to delimit a request.
    if (C.Eof)
      C.ReadBuf.clear();

    if (!flushConn(C))
      return;
    maybeFinishConn(C);
  }

  /// Routes one request line: control ops inline (they stay responsive
  /// under full load), analyses through admission control to the pool.
  void processLine(Conn &C, const std::string &Line) {
    std::string Err;
    std::optional<JsonValue> Req = parseJson(Line, Err);
    if (!Req) {
      enqueue(C, errorReply("null", Err));
      return;
    }
    std::string Id = renderId(Req->get("id"));
    if (!Req->asObject()) {
      enqueue(C, errorReply(Id, "request must be a JSON object"));
      return;
    }
    if (const JsonValue *Op = Req->get("op")) {
      const std::string *Name = Op->asString();
      if (Name && *Name == "shutdown") {
        C.ShutdownWanted = true;
        C.ShutdownId = Id;
        maybeAckShutdown(C);
        return;
      }
      enqueue(C, controlReply(*Req, Id, Cache, Counters));
      return;
    }
    if (MaxInflight && InFlight >= MaxInflight) {
      ++Counters.Overloads;
      enqueue(C, overloadReply(Id, InFlight));
      return;
    }
    submitAnalysis(C, Line);
  }

  void submitAnalysis(Conn &C, const std::string &Line) {
    uint64_t Seq = ++NextSeq;
    auto DL = std::make_shared<Deadline>();
    LiveDeadlines.emplace(Seq, DL);
    ++InFlight;
    ++C.Pending;
    uint64_t ConnId = C.Id;
    AnalysisCache *Ca = Cache;
    const ServerCounters *Co = &Counters;
    Pool.submit([this, Line, ConnId, Seq, DL, Ca, Co] {
      std::string Reply = handleRequest(Line, Ca, *Co, DL.get());
      Loop.post([this, ConnId, Seq, Reply = std::move(Reply)] {
        deliver(Seq, ConnId, Reply);
      });
    });
  }

  /// Loop-thread continuation of a completed analysis.
  void deliver(uint64_t Seq, uint64_t ConnId, const std::string &Reply) {
    LiveDeadlines.erase(Seq);
    --InFlight;
    auto It = Conns.find(ConnId);
    if (It == Conns.end()) {
      // The peer vanished while we worked; the result is not lost (it sits
      // in the cache for the retry) but this reply is.
      ++Counters.DroppedReplies;
      return;
    }
    Conn &C = *It->second;
    --C.Pending;
    enqueue(C, Reply);
    maybeAckShutdown(C);
    if (!flushConn(C))
      return;
    maybeFinishConn(C);
  }

  /// The shutdown op acks only after this connection's outstanding work is
  /// delivered, then the whole server drains.
  void maybeAckShutdown(Conn &C) {
    if (!C.ShutdownWanted || C.ShutdownAcked || C.Pending != 0)
      return;
    C.ShutdownAcked = true;
    C.CloseWhenFlushed = true;
    enqueue(C, "{\"id\": " + C.ShutdownId + ", \"ok\": true, "
                                            "\"shutdown\": true}");
    startDrain("shutdown op");
  }

  void enqueue(Conn &C, const std::string &Reply) {
    C.WriteBuf += Reply;
    C.WriteBuf += '\n';
  }

  /// Flushes buffered replies. Retries EINTR, parks on EAGAIN (POLLOUT
  /// re-arms), and treats only real peer errors as fatal — in which case
  /// every undelivered reply is counted dropped. Returns false when the
  /// connection was closed.
  bool flushConn(Conn &C) {
    while (C.WriteOff < C.WriteBuf.size()) {
      ssize_t N = ::send(C.Fd, C.WriteBuf.data() + C.WriteOff,
                         C.WriteBuf.size() - C.WriteOff, MSG_NOSIGNAL);
      if (N > 0) {
        C.WriteOff += static_cast<size_t>(N);
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        Loop.setInterest(C.Fd, (C.Eof ? 0u : EventLoop::Read) |
                                   EventLoop::Write);
        return true;
      }
      closeConn(C, /*CountDrops=*/true);
      return false;
    }
    if (C.WriteOff) {
      C.WriteBuf.clear();
      C.WriteOff = 0;
    }
    Loop.setInterest(C.Fd, C.Eof ? 0u : EventLoop::Read);
    if (C.CloseWhenFlushed) {
      closeConn(C, /*CountDrops=*/false);
      return false;
    }
    return true;
  }

  void maybeFinishConn(Conn &C) {
    if (C.Eof && C.Pending == 0 && C.unsent() == 0)
      closeConn(C, /*CountDrops=*/false);
  }

  void closeConn(Conn &C, bool CountDrops) {
    if (CountDrops) {
      uint64_t Drops = 0;
      for (size_t I = C.WriteOff; I < C.WriteBuf.size(); ++I)
        Drops += C.WriteBuf[I] == '\n';
      Counters.DroppedReplies += Drops;
    }
    Loop.remove(C.Fd);
    ::close(C.Fd);
    Conns.erase(C.Id); // invalidates C
  }

  unsigned MaxInflight;
  unsigned DrainTimeoutMs;
  AnalysisCache *Cache;
  ServerCounters &Counters;

  EventLoop Loop;
  std::vector<int> ListenFds;
  std::string UnixPath;
  int SigPipe[2] = {-1, -1};

  std::unordered_map<uint64_t, std::unique_ptr<Conn>> Conns;
  std::unordered_map<uint64_t, std::shared_ptr<Deadline>> LiveDeadlines;
  uint64_t NextConnId = 0, NextSeq = 0;
  uint64_t InFlight = 0; ///< admitted analyses not yet delivered
  bool Draining = false;
  Deadline DrainDeadline;

  // Declared last: destroyed first, so in-flight tasks may still post to
  // the (stopped but alive) loop while the pool drains.
  ThreadPool Pool;
};

} // namespace

int main(int Argc, char **Argv) {
  // A client disconnecting mid-reply must cost that client its reply, not
  // the process (and every other client's in-flight work).
  std::signal(SIGPIPE, SIG_IGN);

  unsigned Workers = 0;
  unsigned MaxInflight = 256;
  unsigned DrainTimeoutMs = 30000;
  const char *SocketPath = nullptr;
  const char *TcpSpec = nullptr;
  const char *CacheDir = nullptr;
  bool IncrementalCache = false;
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--workers")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], Workers))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--max-inflight")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], MaxInflight))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--drain-timeout-ms")) {
      if (I + 1 == Argc || !parseCount(Arg, Argv[++I], DrainTimeoutMs))
        return usage(Argv[0]);
    } else if (!std::strcmp(Arg, "--socket")) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      SocketPath = Argv[++I];
    } else if (!std::strcmp(Arg, "--tcp")) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      TcpSpec = Argv[++I];
    } else if (!std::strcmp(Arg, "--cache-dir")) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      CacheDir = Argv[++I];
    } else if (!std::strcmp(Arg, "--incremental-cache")) {
      if (I + 1 == Argc)
        return usage(Argv[0]);
      CacheDir = Argv[++I];
      IncrementalCache = true;
    } else {
      return usage(Argv[0]);
    }
  }
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }

  std::unique_ptr<AnalysisCache> Cache;
  if (CacheDir) {
    Cache = std::make_unique<AnalysisCache>(CacheDir, IncrementalCache);
    if (!Cache->enabled())
      std::fprintf(stderr,
                   "warning: cannot open cache directory %s; serving cold\n",
                   CacheDir);
  }

  static ServerCounters Counters;
  if (SocketPath || TcpSpec) {
    Server S(Workers, MaxInflight, DrainTimeoutMs, Cache.get(), Counters);
    if (!S.ok()) {
      std::fprintf(stderr, "error: cannot set up the event loop\n");
      return 2;
    }
    if (SocketPath && !S.listenUnix(SocketPath))
      return 2;
    if (TcpSpec && !S.listenTcp(TcpSpec))
      return 2;
    return S.run();
  }
  return serveStdin(Workers, Cache.get(), Counters);
}
